//! The analytic available-repair-bandwidth model (paper §4.1.2, Table 2).
//!
//! Effective repair bandwidth is the minimum over pipeline stages of
//! `aggregate throttled bandwidth of participating devices / IO amplification
//! per rebuilt byte`. With the §3 parameters this reproduces Table 2 exactly:
//!
//! | scheme | single-disk BW | catastrophic-pool BW |
//! |--------|----------------|-----------------------|
//! | C/C    | 40 MB/s        | 250 MB/s              |
//! | C/D    | 264 MB/s       | 250 MB/s              |
//! | D/C    | 40 MB/s        | 1363 MB/s             |
//! | D/D    | 264 MB/s       | 1363 MB/s             |
//!
//! All quantities are dimensioned ([`Bandwidth`], [`Volume`], [`Duration`]);
//! escape to raw `f64` only at output boundaries via `.to_mbs()` / `.to_tb()`
//! / `.to_hours()`.

use crate::config::MlecDeployment;
use mlec_topology::Placement;
use mlec_units::{Bandwidth, Duration, Volume};

/// Time to move `volume` at `bw`, clamping non-positive volumes to zero
/// (an empty repair finishes instantly rather than dividing by a rate).
pub fn time_to_move(volume: Volume, bw: Bandwidth) -> Duration {
    if volume.to_tb() <= 0.0 {
        Duration::ZERO
    } else {
        volume / bw
    }
}

/// Available repair bandwidth for a **single disk failure**, in MB of
/// rebuilt data per second (paper Table 2, left half).
///
/// - Clustered local pool: reads fan out over the `k_l` survivors but all
///   writes land on the one spare disk, so the spare's throttled write
///   bandwidth is the bottleneck.
/// - Declustered local pool: all surviving pool disks share reads *and*
///   writes; each rebuilt byte costs `k_l` reads + 1 write on the pool's
///   aggregate disk bandwidth.
pub fn single_disk_repair_bw(dep: &MlecDeployment) -> Bandwidth {
    let disk_bw = dep.config.disk_repair_bw();
    match dep.scheme.local {
        Placement::Clustered => disk_bw,
        Placement::Declustered => {
            let pool_disks = dep.geometry.disks_per_enclosure as f64;
            let survivors = pool_disks - 1.0;
            let amplification = dep.params.local.k as f64 + 1.0;
            survivors * disk_bw / amplification
        }
    }
}

/// Available repair bandwidth for rebuilding a **catastrophic local pool**
/// over the network with R_ALL-style network reads, in MB of rebuilt data
/// per second (paper Table 2, right half).
///
/// - Network-clustered: the rebuilt pool's rack ingress (throttled) is the
///   bottleneck — reads come from `k_n` racks in parallel but everything is
///   written into one rack.
/// - Network-declustered: all racks participate in reads and writes; each
///   rebuilt byte crosses the network `k_n` times for reads plus once for
///   the write, against the aggregate rack bandwidth.
pub fn catastrophic_pool_repair_bw(dep: &MlecDeployment) -> Bandwidth {
    let rack_bw = dep.config.rack_repair_bw();
    match dep.scheme.network {
        Placement::Clustered => rack_bw,
        Placement::Declustered => {
            let racks = dep.geometry.racks as f64;
            let amplification = dep.params.network.k as f64 + 1.0;
            racks * rack_bw / amplification
        }
    }
}

/// Available bandwidth for a **local repair phase** (`R_HYB/R_MIN` stage 2)
/// that rebuilds `m` chunks per affected stripe inside the pool while `f`
/// disks are failed, in MB of rebuilt data per second.
///
/// - Clustered: writes go to `m` spare disks in parallel (reads from the
///   `k_l` survivors keep up: `k_l * bw / k_l * m >= m * bw`).
/// - Declustered: surviving pool disks share `k_l` reads + 1 write per
///   rebuilt byte.
pub fn local_repair_bw(
    dep: &MlecDeployment,
    rebuilt_chunks_per_stripe: u32,
    failed_disks: u32,
) -> Bandwidth {
    let disk_bw = dep.config.disk_repair_bw();
    match dep.scheme.local {
        Placement::Clustered => rebuilt_chunks_per_stripe as f64 * disk_bw,
        Placement::Declustered => {
            let pool_disks = dep.geometry.disks_per_enclosure as f64;
            let survivors = (pool_disks - failed_disks as f64).max(1.0);
            let amplification = dep.params.local.k as f64 + 1.0;
            survivors * disk_bw / amplification
        }
    }
}

/// Repair sizes for Table 2: `(single disk, catastrophic pool)`.
pub fn repair_sizes(dep: &MlecDeployment) -> (Volume, Volume) {
    let disk = Volume::from_tb(dep.geometry.disk_capacity_tb);
    let pool = Volume::from_tb(dep.local_pools().pool_capacity_tb());
    (disk, pool)
}

/// Repair time for a single disk failure (Fig 6a), including the
/// failure-detection delay.
pub fn single_disk_repair_time(dep: &MlecDeployment) -> Duration {
    let (disk, _) = repair_sizes(dep);
    dep.config.detection() + time_to_move(disk, single_disk_repair_bw(dep))
}

/// Repair time for a catastrophic local pool under `R_ALL` (Fig 6b),
/// including the failure-detection delay.
pub fn catastrophic_pool_repair_time(dep: &MlecDeployment) -> Duration {
    let (_, pool) = repair_sizes(dep);
    dep.config.detection() + time_to_move(pool, catastrophic_pool_repair_bw(dep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn table2_single_disk_bandwidth() {
        assert!((single_disk_repair_bw(&dep(MlecScheme::CC)).to_mbs() - 40.0).abs() < 0.5);
        assert!((single_disk_repair_bw(&dep(MlecScheme::DC)).to_mbs() - 40.0).abs() < 0.5);
        assert!((single_disk_repair_bw(&dep(MlecScheme::CD)).to_mbs() - 264.0).abs() < 1.0);
        assert!((single_disk_repair_bw(&dep(MlecScheme::DD)).to_mbs() - 264.0).abs() < 1.0);
    }

    #[test]
    fn table2_catastrophic_pool_bandwidth() {
        assert!((catastrophic_pool_repair_bw(&dep(MlecScheme::CC)).to_mbs() - 250.0).abs() < 0.5);
        assert!((catastrophic_pool_repair_bw(&dep(MlecScheme::CD)).to_mbs() - 250.0).abs() < 0.5);
        assert!((catastrophic_pool_repair_bw(&dep(MlecScheme::DC)).to_mbs() - 1363.0).abs() < 1.0);
        assert!((catastrophic_pool_repair_bw(&dep(MlecScheme::DD)).to_mbs() - 1363.0).abs() < 1.0);
    }

    #[test]
    fn table2_repair_sizes() {
        let (disk, pool) = repair_sizes(&dep(MlecScheme::CC));
        assert_eq!((disk.to_tb(), pool.to_tb()), (20.0, 400.0));
        let (disk, pool) = repair_sizes(&dep(MlecScheme::CD));
        assert_eq!((disk.to_tb(), pool.to_tb()), (20.0, 2400.0));
        let (disk, pool) = repair_sizes(&dep(MlecScheme::DC));
        assert_eq!((disk.to_tb(), pool.to_tb()), (20.0, 400.0));
        let (disk, pool) = repair_sizes(&dep(MlecScheme::DD));
        assert_eq!((disk.to_tb(), pool.to_tb()), (20.0, 2400.0));
    }

    #[test]
    fn fig6a_single_disk_times() {
        // C/C, D/C: 20 TB at 40 MB/s ≈ 139 h; C/D, D/D: ≈ 21 h (paper:
        // "C/D and D/D are 6x faster").
        let slow = single_disk_repair_time(&dep(MlecScheme::CC)).to_hours();
        let fast = single_disk_repair_time(&dep(MlecScheme::CD)).to_hours();
        assert!(
            (slow - (0.5 + 20.0e6 / 40.0 / 3600.0)).abs() < 0.1,
            "slow={slow}"
        );
        assert!(
            slow / fast > 5.5 && slow / fast < 7.0,
            "ratio={}",
            slow / fast
        );
    }

    #[test]
    fn fig6b_pool_repair_times_ordering() {
        // Paper F#2-4: C/D slowest (~2667 h), D/C fastest (~82 h), D/D a bit
        // slower than C/C (489 vs 444 h).
        let cc = catastrophic_pool_repair_time(&dep(MlecScheme::CC)).to_hours();
        let cd = catastrophic_pool_repair_time(&dep(MlecScheme::CD)).to_hours();
        let dc = catastrophic_pool_repair_time(&dep(MlecScheme::DC)).to_hours();
        let dd = catastrophic_pool_repair_time(&dep(MlecScheme::DD)).to_hours();
        assert!(
            cd > dd && dd > cc && cc > dc,
            "cc={cc} cd={cd} dc={dc} dd={dd}"
        );
        assert!((cc - 444.9).abs() < 2.0);
        assert!((cd - 2667.2).abs() < 10.0);
        assert!((dc - 82.0).abs() < 2.0);
        assert!((dd - 489.4).abs() < 3.0);
    }

    #[test]
    fn local_phase_bandwidth() {
        // C/C local phase rebuilding 3 chunks/stripe: 3 spares writing.
        let bw = local_repair_bw(&dep(MlecScheme::CC), 3, 4);
        assert!((bw.to_mbs() - 120.0).abs() < 1e-9);
        // C/D with 4 failed: 116 survivors / 18.
        let bw = local_repair_bw(&dep(MlecScheme::CD), 3, 4);
        assert!((bw.to_mbs() - 116.0 * 40.0 / 18.0).abs() < 1e-6);
    }

    #[test]
    fn unit_conversions() {
        assert!((Bandwidth::from_mbs(1000.0).to_tb_per_hour() - 3.6).abs() < 1e-12);
        assert_eq!(
            time_to_move(Volume::ZERO, Bandwidth::from_mbs(100.0)),
            Duration::ZERO
        );
        let t = time_to_move(Volume::from_tb(3.6), Bandwidth::from_mbs(1000.0));
        assert!((t.to_hours() - 1.0).abs() < 1e-12);
        // Bit-exact against the pre-migration inline formula.
        let t = time_to_move(Volume::from_tb(400.0), Bandwidth::from_mbs(250.0));
        assert_eq!(
            t.to_hours().to_bits(),
            (400.0_f64 / (250.0 * 3600.0 / 1e6)).to_bits()
        );
    }
}
