//! Failure traces: generation, parsing, and statistics — the "real traces"
//! input mode of the paper's fault simulation (§3). Production traces are
//! proprietary (see DESIGN.md substitutions), so this module synthesizes
//! equivalent ones: steady Poisson background failures plus correlated
//! bursts, which exercises the same trace-replay code path.

use crate::config::HOURS_PER_YEAR;
use mlec_topology::{DiskId, Geometry};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One trace record: a disk failing at an absolute time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Failure time in hours from trace start.
    pub time_h: f64,
    /// The failed disk.
    pub disk: DiskId,
}

/// A disk-failure trace, sorted by time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureTrace {
    events: Vec<TraceEvent>,
}

impl FailureTrace {
    /// Build from events (sorted internally).
    pub fn new(mut events: Vec<TraceEvent>) -> FailureTrace {
        events.sort_by(|a, b| a.time_h.total_cmp(&b.time_h));
        FailureTrace { events }
    }

    /// The events, time-ascending.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of failures in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Trace duration (time of the last event), hours.
    pub fn span_h(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time_h)
    }

    /// The trace as a kernel [`ArrivalSource`](crate::kernel::ArrivalSource)
    /// for the system simulator: `(time_h, disk)` records, with disk ids
    /// folded into `0..total_disks` so traces recorded on a larger fleet
    /// replay on a smaller one.
    pub fn arrival_source(&self, total_disks: DiskId) -> crate::kernel::ArrivalSource {
        crate::kernel::ArrivalSource::trace(
            self.events
                .iter()
                .map(|e| (e.time_h, e.disk % total_disks))
                .collect(),
        )
    }

    /// Empirical annualized failure rate per disk.
    pub fn empirical_afr(&self, geometry: &Geometry) -> f64 {
        if self.span_h() <= 0.0 {
            return 0.0;
        }
        let years = self.span_h() / HOURS_PER_YEAR;
        self.len() as f64 / geometry.total_disks() as f64 / years
    }

    /// Serialize to a simple `time_h,disk` CSV (header included).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_h,disk\n");
        for e in &self.events {
            out.push_str(&format!("{},{}\n", e.time_h, e.disk));
        }
        out
    }

    /// Parse the CSV form produced by [`FailureTrace::to_csv`]. Lines that
    /// fail to parse are reported as errors with their line number.
    pub fn from_csv(text: &str) -> Result<FailureTrace, TraceParseError> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || lineno == 0 && line.starts_with("time_h") {
                continue;
            }
            let mut parts = line.split(',');
            let time: f64 = parts
                .next()
                .ok_or(TraceParseError { line: lineno + 1 })?
                .trim()
                .parse()
                .map_err(|_| TraceParseError { line: lineno + 1 })?;
            let disk: DiskId = parts
                .next()
                .ok_or(TraceParseError { line: lineno + 1 })?
                .trim()
                .parse()
                .map_err(|_| TraceParseError { line: lineno + 1 })?;
            if parts.next().is_some() || !time.is_finite() || time < 0.0 {
                return Err(TraceParseError { line: lineno + 1 });
            }
            events.push(TraceEvent { time_h: time, disk });
        }
        Ok(FailureTrace::new(events))
    }
}

/// A CSV line that could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed trace record at line {}", self.line)
    }
}

impl std::error::Error for TraceParseError {}

/// Parameters of the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Steady background AFR (e.g. 0.01).
    pub background_afr: f64,
    /// Correlated bursts per year (e.g. 0.5).
    pub bursts_per_year: f64,
    /// Disks failed per burst.
    pub burst_size: u32,
    /// Racks each burst is concentrated in.
    pub burst_racks: u32,
    /// Trace duration in years.
    pub years: f64,
}

/// Generate a synthetic trace: Poisson background failures over all disks
/// plus Poisson-arriving correlated bursts confined to a few racks.
pub fn synthesize(geometry: &Geometry, spec: &TraceSpec, seed: u64) -> FailureTrace {
    let mut rng = ChaCha12Rng::seed_from_u64(
        mlec_runner::SeedStream::new(seed, "trace/synthesize").trial_seed(0),
    );
    let span_h = spec.years * HOURS_PER_YEAR;
    let mut events = Vec::new();

    // Background: thinned Poisson process over the whole fleet.
    let bg_rate = geometry.total_disks() as f64 * spec.background_afr / HOURS_PER_YEAR;
    let mut t = 0.0;
    loop {
        t += crate::failure::sample_exponential(&mut rng, bg_rate);
        if t > span_h {
            break;
        }
        events.push(TraceEvent {
            time_h: t,
            disk: rng.gen_range(0..geometry.total_disks()),
        });
    }

    // Bursts: pick racks, fail burst_size disks within a small window.
    let burst_rate = spec.bursts_per_year / HOURS_PER_YEAR;
    let mut t = 0.0;
    loop {
        t += crate::failure::sample_exponential(&mut rng, burst_rate);
        if t > span_h {
            break;
        }
        if let Ok(layout) = mlec_topology::burst::sample_burst(
            geometry,
            spec.burst_size,
            spec.burst_racks,
            &mut rng,
        ) {
            for &disk in layout.disks() {
                // Jitter failures across a 10-minute window.
                let jitter: f64 = rng.gen_range(0.0..1.0 / 6.0);
                events.push(TraceEvent {
                    time_h: t + jitter,
                    disk,
                });
            }
        }
    }
    FailureTrace::new(events)
}

/// Which disks a failure rule targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskSelector {
    /// Every disk in the system.
    All,
    /// All disks of one rack.
    Rack(u32),
    /// All disks of one (rack, enclosure).
    Enclosure(u32, u32),
    /// An explicit contiguous id range `[start, end)` — e.g. a vendor batch
    /// that shipped together.
    Range(DiskId, DiskId),
}

impl DiskSelector {
    /// Materialize the selected disk ids.
    pub fn disks(&self, geometry: &Geometry) -> Vec<DiskId> {
        match *self {
            DiskSelector::All => (0..geometry.total_disks()).collect(),
            DiskSelector::Rack(r) => geometry.disks_in_rack(r).collect(),
            DiskSelector::Enclosure(r, e) => geometry.disks_in_enclosure(r, e).collect(),
            DiskSelector::Range(a, b) => (a..b.min(geometry.total_disks())).collect(),
        }
    }
}

/// A failure rule: the selected disks fail at `afr` during
/// `[start_h, end_h)` — the paper's "rules" fault-simulation mode. Rules
/// compose additively (a batch rule on top of a background rule raises the
/// batch's hazard during its window).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRule {
    /// Targeted disks.
    pub selector: DiskSelector,
    /// Annualized failure rate while the rule is active.
    pub afr: f64,
    /// Activation time, hours.
    pub start_h: f64,
    /// Deactivation time, hours.
    pub end_h: f64,
}

/// Generate a trace from a set of additive failure rules.
pub fn synthesize_rules(geometry: &Geometry, rules: &[FailureRule], seed: u64) -> FailureTrace {
    let mut rng = ChaCha12Rng::seed_from_u64(
        mlec_runner::SeedStream::new(seed, "trace/synthesize_rules").trial_seed(0),
    );
    let mut events = Vec::new();
    for rule in rules {
        assert!(rule.end_h >= rule.start_h, "rule window must be ordered");
        let disks = rule.selector.disks(geometry);
        if disks.is_empty() || rule.afr <= 0.0 {
            continue;
        }
        let rate = disks.len() as f64 * rule.afr / HOURS_PER_YEAR;
        let mut t = rule.start_h;
        loop {
            t += crate::failure::sample_exponential(&mut rng, rate);
            if t >= rule.end_h {
                break;
            }
            events.push(TraceEvent {
                time_h: t,
                disk: *disks
                    // PANICS: `gen_range(0..disks.len())` requires a non-empty selection and yields an in-range index.
                    .get(rng.gen_range(0..disks.len()))
                    .expect("non-empty selection"),
            });
        }
    }
    FailureTrace::new(events)
}

/// Split a trace into the burst windows it contains: maximal groups of
/// events separated by less than `window_h`. Returns `(start_h, disks)` per
/// group with at least `min_size` failures — the observable bursts an
/// operator would investigate.
pub fn detect_bursts(
    trace: &FailureTrace,
    window_h: f64,
    min_size: usize,
) -> Vec<(f64, Vec<DiskId>)> {
    let mut bursts = Vec::new();
    let mut current: Vec<TraceEvent> = Vec::new();
    for &e in trace.events() {
        if let Some(last) = current.last() {
            if e.time_h - last.time_h > window_h {
                if current.len() >= min_size {
                    // PANICS: guarded by `current.len() >= min_size` with `min_size >= 1` (a burst has at least one event).
                    bursts.push((current[0].time_h, current.iter().map(|x| x.disk).collect()));
                }
                current.clear();
            }
        }
        current.push(e);
    }
    if current.len() >= min_size {
        // PANICS: same guard as above: `current.len() >= min_size >= 1`.
        bursts.push((current[0].time_h, current.iter().map(|x| x.disk).collect()));
    }
    bursts
}

/// Shuffle a trace's disk assignments while keeping the timing intact — a
/// "rules" style transformation (paper §3) used to test placement
/// sensitivity separately from temporal correlation.
pub fn shuffle_disks(trace: &FailureTrace, geometry: &Geometry, seed: u64) -> FailureTrace {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut disks: Vec<DiskId> = (0..geometry.total_disks()).collect();
    disks.shuffle(&mut rng);
    FailureTrace::new(
        trace
            .events()
            .iter()
            .map(|e| TraceEvent {
                time_h: e.time_h,
                // PANICS: the modulo keeps the index in bounds; `total_disks()` is nonzero for any valid geometry.
                disk: disks[e.disk as usize % disks.len()],
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TraceSpec {
        TraceSpec {
            background_afr: 0.02,
            bursts_per_year: 2.0,
            burst_size: 30,
            burst_racks: 2,
            years: 5.0,
        }
    }

    #[test]
    fn synthesis_matches_requested_rates() {
        let g = Geometry::paper_default();
        let trace = synthesize(&g, &spec(), 1);
        // Background: 57,600 * 0.02 * 5 = 5,760; bursts: 2*5*30 = 300.
        let expected = 5760.0 + 300.0;
        assert!(
            (trace.len() as f64 - expected).abs() < 400.0,
            "len={}",
            trace.len()
        );
        // AFR estimate close to background + burst contribution.
        let afr = trace.empirical_afr(&g);
        assert!((afr - 0.021).abs() < 0.003, "afr={afr}");
    }

    #[test]
    fn csv_round_trip() {
        let g = Geometry::small_test();
        let trace = synthesize(
            &g,
            &TraceSpec {
                background_afr: 1.0,
                bursts_per_year: 1.0,
                burst_size: 5,
                burst_racks: 1,
                years: 1.0,
            },
            7,
        );
        let csv = trace.to_csv();
        let parsed = FailureTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        assert!(FailureTrace::from_csv("time_h,disk\n1.0,5\nbogus\n").is_err());
        assert!(FailureTrace::from_csv("time_h,disk\n-1.0,5\n").is_err());
        assert!(FailureTrace::from_csv("time_h,disk\n1.0,5,9\n").is_err());
        let err = FailureTrace::from_csv("time_h,disk\n1.0,x\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn events_are_time_sorted() {
        let trace = FailureTrace::new(vec![
            TraceEvent {
                time_h: 5.0,
                disk: 1,
            },
            TraceEvent {
                time_h: 1.0,
                disk: 2,
            },
        ]);
        assert_eq!(trace.events()[0].disk, 2);
        assert!((trace.span_h() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn burst_detection_finds_injected_bursts() {
        let g = Geometry::paper_default();
        let trace = synthesize(&g, &spec(), 3);
        let bursts = detect_bursts(&trace, 0.5, 10);
        // ~10 bursts injected over 5 years at 2/year.
        assert!(
            (3..=20).contains(&bursts.len()),
            "detected {} bursts",
            bursts.len()
        );
        for (_, disks) in &bursts {
            assert!(disks.len() >= 10);
        }
    }

    #[test]
    fn shuffle_preserves_timing() {
        let g = Geometry::small_test();
        let trace = FailureTrace::new(vec![
            TraceEvent {
                time_h: 1.0,
                disk: 3,
            },
            TraceEvent {
                time_h: 2.0,
                disk: 3,
            },
        ]);
        let shuffled = shuffle_disks(&trace, &g, 9);
        assert_eq!(shuffled.len(), 2);
        assert_eq!(shuffled.events()[0].time_h, 1.0);
        assert_eq!(shuffled.events()[1].time_h, 2.0);
        // Same source disk maps to the same target disk.
        assert_eq!(shuffled.events()[0].disk, shuffled.events()[1].disk);
    }

    #[test]
    fn rules_respect_windows_and_selectors() {
        let g = Geometry::paper_default();
        let rules = vec![
            // Background across the fleet for a year.
            FailureRule {
                selector: DiskSelector::All,
                afr: 0.01,
                start_h: 0.0,
                end_h: 8766.0,
            },
            // A bad vendor batch (disks 1000..1500) failing hard in Q2.
            FailureRule {
                selector: DiskSelector::Range(1000, 1500),
                afr: 2.0,
                start_h: 2000.0,
                end_h: 4000.0,
            },
        ];
        let trace = synthesize_rules(&g, &rules, 3);
        // Background ~576 + batch ~500*2*(2000/8766) ≈ 228.
        assert!(
            (trace.len() as f64 - 804.0).abs() < 150.0,
            "len={}",
            trace.len()
        );
        // Batch-window failures of batch disks only inside the window.
        for e in trace.events() {
            if (1000..1500).contains(&e.disk) && !(2000.0..4000.0).contains(&e.time_h) {
                // Those must come from the background rule, consistent with
                // its ~3% share of fleet disks.
                continue;
            }
        }
        let in_batch = trace
            .events()
            .iter()
            .filter(|e| (1000..1500).contains(&e.disk))
            .count();
        assert!(in_batch > 150, "batch rule fired: {in_batch}");
    }

    #[test]
    fn rack_rule_concentrates_failures() {
        let g = Geometry::paper_default();
        let rules = vec![FailureRule {
            selector: DiskSelector::Rack(7),
            afr: 5.0,
            start_h: 0.0,
            end_h: 1000.0,
        }];
        let trace = synthesize_rules(&g, &rules, 9);
        assert!(!trace.is_empty());
        assert!(trace.events().iter().all(|e| g.rack_of(e.disk) == 7));
        assert!(trace.events().iter().all(|e| e.time_h < 1000.0));
    }

    #[test]
    fn selector_materialization() {
        let g = Geometry::small_test();
        assert_eq!(DiskSelector::All.disks(&g).len(), 144);
        assert_eq!(DiskSelector::Rack(0).disks(&g).len(), 24);
        assert_eq!(DiskSelector::Enclosure(1, 1).disks(&g).len(), 12);
        assert_eq!(DiskSelector::Range(140, 200).disks(&g).len(), 4);
    }

    #[test]
    fn empty_trace_statistics() {
        let g = Geometry::small_test();
        let trace = FailureTrace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.empirical_afr(&g), 0.0);
        assert!(detect_bursts(&trace, 1.0, 1).is_empty());
    }
}
