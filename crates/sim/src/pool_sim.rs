//! Long-horizon durability simulation of a single local pool.
//!
//! This is splitting stage 1 (paper §3 "Splitting"): simulate one local pool
//! under independent disk failures and collect catastrophic-failure samples.
//! Clustered pools track per-disk rebuilds directly; declustered pools use
//! the [`crate::census::StripeCensus`] expected-value model with priority
//! (most-failed-first) rebuild and Poisson rare-stripe sampling at the
//! catastrophic boundary.
//!
//! At the paper's true 1% AFR direct simulation observes nothing; the
//! [`crate::importance`] layer fixes that: failure arrivals can be sampled
//! at a biased rate ([`FailureBias`], typically only while the pool is
//! degraded) and every emitted [`CatastrophicEvent`] carries the exact
//! likelihood-ratio weight of the true measure against the biased one, so
//! weighted rates stay unbiased. [`simulate_pool`] is the unbiased entry
//! point (all weights exactly 1.0); [`simulate_pool_biased`] takes a bias
//! and is bit-identical to it under [`FailureBias::NONE`].
//!
//! Modeling notes (see DESIGN.md):
//! - failure arrivals are exponential per surviving disk, resampled at every
//!   state change (exact for the memoryless model);
//! - each failure adds a detection delay during which repair of the pool is
//!   paused (conservative: detection of a new failure stalls the repairer);
//! - a declustered pool whose failed chunks are fully rebuilt into spare
//!   space counts as healthy (the admin rebalances in the background,
//!   paper §2.1);
//! - when the failed-disk count reaches `p_l + 1`, the *expected* number of
//!   stripes at multiplicity `p_l + 1` is `λ`; the pool is catastrophic with
//!   probability `1 - exp(-λ)` (a Poisson draw decides), which is the
//!   rare-stripe sampling that distinguishes Dp pools from Cp pools;
//! - likelihood-ratio weights reset at every return to the all-healthy
//!   state (a regeneration point of the memoryless process), which bounds
//!   weight degeneracy over long horizons without giving up exactness; the
//!   per-excursion weights are recorded and their mean is 1 in expectation
//!   (the unbiasedness diagnostic surfaced as
//!   [`PoolSimResult::mean_excursion_weight`]).

use crate::census::StripeCensus;
use crate::config::{MlecDeployment, HOURS_PER_YEAR};
use crate::failure::{sample_poisson, FailureModel};
use crate::importance::FailureBias;
use crate::kernel::{
    run_pool_policy, FailureOutcome, HazardKernel, NoopObserver, PoolPolicy, SimObserver,
};
use mlec_topology::Placement;
use mlec_units::Volume;

/// One catastrophic local-pool failure observed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatastrophicEvent {
    /// Simulation time of the event, hours.
    pub time_h: f64,
    /// Concurrently failed disks at the event.
    pub concurrent_failures: u32,
    /// Lost local stripes (sampled for Dp, all stripes for Cp).
    pub lost_stripes: f64,
    /// Likelihood-ratio weight of the trajectory excursion that produced
    /// this event (exactly 1.0 under unbiased simulation).
    pub weight: f64,
}

/// Aggregate result of a pool simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSimResult {
    /// Simulated pool-years.
    pub pool_years: f64,
    /// Catastrophic events observed (each carrying its importance weight).
    pub events: Vec<CatastrophicEvent>,
    /// Total disk failures generated.
    pub disk_failures: u64,
    /// Maximum concurrent failures seen.
    pub max_concurrent: u32,
    /// Completed likelihood-ratio excursions (regeneration cycles plus the
    /// censored one closed at the horizon).
    pub excursions: u64,
    /// Sum of final excursion weights; `E[weight] = 1` per excursion, so
    /// `excursion_weight / excursions ≈ 1` is the unbiasedness diagnostic.
    pub excursion_weight: f64,
}

impl PoolSimResult {
    /// Weighted catastrophic events per pool-year (0 when no exposure, so a
    /// zero-trial resume can never produce NaN).
    pub fn rate_per_pool_year(&self) -> f64 {
        if self.pool_years <= 0.0 {
            return 0.0;
        }
        self.events.iter().map(|e| e.weight).sum::<f64>() / self.pool_years
    }

    /// Weighted mean lost local stripes per catastrophic event (0 if none).
    pub fn mean_lost_stripes(&self) -> f64 {
        let sum_w: f64 = self.events.iter().map(|e| e.weight).sum();
        if sum_w <= 0.0 {
            return 0.0;
        }
        self.events
            .iter()
            .map(|e| e.weight * e.lost_stripes)
            .sum::<f64>()
            / sum_w
    }

    /// Mean final likelihood weight per excursion — ≈1 for a correctly
    /// weighted run (exactly 1 unbiased); 0 when no excursion completed.
    pub fn mean_excursion_weight(&self) -> f64 {
        if self.excursions == 0 {
            return 0.0;
        }
        self.excursion_weight / self.excursions as f64
    }

    /// Merge another run into this one (offsetting nothing — event times are
    /// per-run).
    pub fn merge(&mut self, other: PoolSimResult) {
        self.pool_years += other.pool_years;
        self.events.extend(other.events);
        self.disk_failures += other.disk_failures;
        self.max_concurrent = self.max_concurrent.max(other.max_concurrent);
        self.excursions += other.excursions;
        self.excursion_weight += other.excursion_weight;
    }
}

/// Simulate one local pool of the deployment for `years` simulated years,
/// unbiased (every event weight is exactly 1.0).
///
/// After a catastrophic event the pool is reset to healthy (the network
/// level repairs it; the sojourn time is accounted analytically per repair
/// method by the splitting estimator).
pub fn simulate_pool(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    years: f64,
    seed: u64,
) -> PoolSimResult {
    simulate_pool_biased(dep, failure_model, years, seed, FailureBias::NONE)
}

/// Simulate one local pool with importance-sampled failure arrivals.
///
/// Arrivals are drawn at `bias.multiplier(failed_disks) ×` the true rate and
/// every emitted event carries the exact likelihood-ratio weight, so
/// `Σ weight / pool_years` estimates the true catastrophic rate at any bias.
/// With [`FailureBias::NONE`] this is bit-identical to [`simulate_pool`]
/// (the RNG consumes the same draws).
pub fn simulate_pool_biased(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    years: f64,
    seed: u64,
    bias: FailureBias,
) -> PoolSimResult {
    simulate_pool_observed(dep, failure_model, years, seed, bias, &mut NoopObserver)
}

/// [`simulate_pool_biased`] with a [`SimObserver`] attached: per-event
/// callbacks for failures/repairs/catastrophes plus degraded-interval
/// accounting. Observers never consume randomness, so results are
/// bit-identical with any observer (and with [`NoopObserver`] the
/// monomorphized code is the unobserved simulator).
pub fn simulate_pool_observed<O: SimObserver>(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    years: f64,
    seed: u64,
    bias: FailureBias,
    observer: &mut O,
) -> PoolSimResult {
    match dep.scheme.local {
        Placement::Clustered => {
            // The clustered simulator predates the seed-stream convention
            // and seeds its ChaCha12 stream raw; changing this would shift
            // every fixed-seed golden.
            let mut kernel = HazardKernel::from_seed(seed, bias, years * HOURS_PER_YEAR);
            let mut policy = ClusteredPolicy::new(dep, failure_model);
            finish_pool_run(
                run_pool_policy(&mut kernel, &mut policy, observer),
                &kernel,
                policy.max_concurrent(),
                years,
            )
        }
        Placement::Declustered => {
            let mut kernel = HazardKernel::from_seed_stream(
                seed,
                "pool_sim/declustered",
                bias,
                years * HOURS_PER_YEAR,
            );
            let mut policy = DeclusteredPolicy::new(dep, failure_model);
            finish_pool_run(
                run_pool_policy(&mut kernel, &mut policy, observer),
                &kernel,
                policy.max_concurrent(),
                years,
            )
        }
    }
}

/// Assemble a [`PoolSimResult`] from the kernel's bookkeeping and the
/// policy's concurrency accounting.
fn finish_pool_run(
    events: Vec<CatastrophicEvent>,
    kernel: &HazardKernel,
    max_concurrent: u32,
    years: f64,
) -> PoolSimResult {
    PoolSimResult {
        pool_years: years,
        events,
        disk_failures: kernel.disk_failures(),
        max_concurrent,
        excursions: kernel.excursions(),
        excursion_weight: kernel.excursion_weight(),
    }
}

/// Per-disk failure rate (events/hour) implied by the model; traces are not
/// supported by the closed-loop pool simulator (they drive the burst and
/// system paths instead).
///
/// For Weibull this is the renewal rate `1 / MTTF` with the MTTF computed by
/// the Lanczos gamma in [`crate::failure`] — an earlier truncated-Stirling
/// shortcut here was ~0.2% off near shape 1, silently biasing every Weibull
/// per-disk rate.
fn per_disk_rate(model: &FailureModel) -> f64 {
    match model {
        FailureModel::Exponential { afr } => afr / HOURS_PER_YEAR,
        FailureModel::Weibull { .. } => 1.0 / model.mttf().to_hours(),
        FailureModel::Trace { .. } => {
            panic!("trace-driven failures are not supported by the pool simulator")
        }
    }
}

/// The clustered pool as a [`PoolPolicy`]: per-disk rebuilds tracked
/// directly (a `Vec` of repair-completion times), catastrophe when
/// `p_l + 1` failures overlap — at which point every stripe spans the pool
/// and all are lost.
pub struct ClusteredPolicy {
    /// Pool size in disks.
    d: u32,
    /// Catastrophic threshold `p_l + 1`.
    threshold: u32,
    /// Per-disk failure rate, events/hour.
    rate: f64,
    /// Deterministic single-disk rebuild time, hours.
    repair_hours: f64,
    /// Stripes in the pool (all lost at catastrophe).
    total_stripes: f64,
    /// Repair-completion times of currently failed disks.
    active: Vec<f64>,
    max_concurrent: u32,
}

impl ClusteredPolicy {
    /// Policy state for one clustered pool of the deployment.
    pub fn new(dep: &MlecDeployment, failure_model: &FailureModel) -> ClusteredPolicy {
        let d = dep.local_pools().pool_size();
        ClusteredPolicy {
            d,
            threshold: dep.params.local.p as u32 + 1,
            rate: per_disk_rate(failure_model),
            repair_hours: (dep.config.detection()
                + Volume::from_tb(dep.geometry.disk_capacity_tb)
                    .transfer_time_mb(dep.config.disk_repair_bw()))
            .to_hours(),
            total_stripes: d as f64 * dep.geometry.chunks_per_disk() / dep.local_width() as f64,
            active: Vec::new(),
            max_concurrent: 0,
        }
    }
}

impl PoolPolicy for ClusteredPolicy {
    fn failed_disks(&self) -> u32 {
        self.active.len() as u32
    }

    fn failure_rate(&self, failed: u32) -> f64 {
        (self.d - failed) as f64 * self.rate
    }

    fn next_repair_event(&self, _now: f64) -> f64 {
        self.active.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn failure_wins_ties(&self) -> bool {
        // At a tie the repair is handled first: an arrival never sees a
        // rebuild that finished at its own timestamp.
        false
    }

    fn on_repair_progress(&mut self, _from: f64, _to: f64) {}

    fn on_repair_event(&mut self, now: f64, _failed_before: u32) -> bool {
        self.active.retain(|&t| t > now);
        // Back to all-healthy: regeneration point, weight resets.
        self.active.is_empty()
    }

    fn on_failure(&mut self, kernel: &mut HazardKernel) -> FailureOutcome {
        self.active.push(kernel.now() + self.repair_hours);
        self.max_concurrent = self.max_concurrent.max(self.active.len() as u32);
        if self.active.len() as u32 >= self.threshold {
            // Every stripe spans the pool: all stripes are lost.
            let concurrent_failures = self.active.len() as u32;
            self.active.clear(); // network repair resets the pool
            FailureOutcome::Catastrophic {
                concurrent_failures,
                lost_stripes: self.total_stripes,
            }
        } else {
            FailureOutcome::Continue
        }
    }

    fn max_concurrent(&self) -> u32 {
        self.max_concurrent
    }
}

/// The declustered pool as a [`PoolPolicy`]: the [`StripeCensus`]
/// expected-value model with priority (most-failed-first) drain, FIFO
/// spare-drain disk release, detection-delay repair pauses, and Poisson
/// rare-stripe sampling at the catastrophic boundary.
pub struct DeclusteredPolicy {
    /// Pool size in disks.
    d: u32,
    /// Local stripe width `k_l + p_l`.
    w: u32,
    /// Catastrophic threshold `p_l + 1`.
    threshold: u32,
    /// Per-disk failure rate, events/hour.
    rate: f64,
    /// Stripes in the pool.
    total_stripes: f64,
    /// Detection delay added after every failure, hours.
    detection_hours: f64,
    /// Drain bandwidth at `f` failed disks, chunks/hour (interval-start
    /// convention: recomputed per step, held constant over it).
    drain_rate: DrainRate,
    census: StripeCensus,
    /// Repair is paused until the most recent failure is detected.
    drain_paused_until: f64,
    /// FIFO of per-failure outstanding chunk volumes: when cumulative drain
    /// covers the head entry, that disk's data is fully in spare space and
    /// the disk is released (it no longer constrains stripe placement).
    pending: std::collections::VecDeque<f64>,
    max_concurrent: u32,
}

/// The declustered drain-rate model, captured from the deployment so the
/// policy carries no deployment borrow.
struct DrainRate {
    /// Precomputed `local_repair_bw(dep, 1, f) * 3600 / chunk_mb` for
    /// each failed-disk count `f` in `0..=d`.
    chunks_per_hour: Vec<f64>,
}

impl DrainRate {
    fn new(dep: &MlecDeployment, d: u32, chunk_mb: f64) -> DrainRate {
        DrainRate {
            chunks_per_hour: (0..=d)
                .map(|f| crate::bandwidth::local_repair_bw(dep, 1, f).to_mbs() * 3600.0 / chunk_mb)
                .collect(),
        }
    }

    fn at(&self, failed: u32) -> f64 {
        // PANICS: callers pass `failed <= d`, the inclusive bound the
        // vector was built with.
        self.chunks_per_hour[failed as usize]
    }
}

impl DeclusteredPolicy {
    /// Policy state for one declustered pool of the deployment.
    pub fn new(dep: &MlecDeployment, failure_model: &FailureModel) -> DeclusteredPolicy {
        let pools = dep.local_pools();
        let d = pools.pool_size();
        let w = dep.local_width();
        let chunk_mb = dep.geometry.chunk_kb / 1e3;
        let total_stripes = d as f64 * dep.geometry.chunks_per_disk() / w as f64;
        DeclusteredPolicy {
            d,
            w,
            threshold: dep.params.local.p as u32 + 1,
            rate: per_disk_rate(failure_model),
            total_stripes,
            detection_hours: dep.config.detection_hours,
            drain_rate: DrainRate::new(dep, d, chunk_mb),
            census: StripeCensus::new(d, w, total_stripes),
            drain_paused_until: 0.0,
            pending: std::collections::VecDeque::new(),
            max_concurrent: 0,
        }
    }

    /// Reset to healthy after a catastrophe (the network level rebuilds the
    /// pool); repair of future failures resumes immediately.
    fn reset_after_catastrophe(&mut self, now: f64) {
        self.census = StripeCensus::new(self.d, self.w, self.total_stripes);
        self.pending.clear();
        self.drain_paused_until = now;
    }
}

impl PoolPolicy for DeclusteredPolicy {
    fn failed_disks(&self) -> u32 {
        self.census.failed_disks()
    }

    fn failure_rate(&self, failed: u32) -> f64 {
        (self.d - failed) as f64 * self.rate
    }

    fn next_repair_event(&self, now: f64) -> f64 {
        // Time at which the current drain would finish everything.
        let remaining_chunks = self.census.failed_chunks();
        if remaining_chunks > 0.5 {
            let rate = self.drain_rate.at(self.census.failed_disks());
            // Floor the step so floating-point rounding at large `now` can
            // never produce a zero-length step (which would livelock).
            (self.drain_paused_until.max(now) + remaining_chunks / rate).max(now + 1e-6)
        } else {
            f64::INFINITY
        }
    }

    fn failure_wins_ties(&self) -> bool {
        // At a tie the failure is handled first (after the interval's drain
        // has been applied by `on_repair_progress`).
        true
    }

    fn on_repair_progress(&mut self, from: f64, to: f64) {
        // Apply the drain that happened over [from, to]; the rate is held
        // at the interval-start value (the same convention the exposure
        // accounting uses, so the likelihood ratio stays exact).
        let remaining_chunks = self.census.failed_chunks();
        let drain_start = self.drain_paused_until.max(from);
        if to > drain_start && remaining_chunks > 1e-9 {
            let budget = (to - drain_start) * self.drain_rate.at(self.census.failed_disks());
            let repaired = self.census.drain_priority(budget);
            self.census.consume_drain(&mut self.pending, repaired);
            if self.census.failed_chunks() < 0.5 {
                self.pending.clear();
            }
        }
    }

    fn on_repair_event(&mut self, _now: f64, failed_before: u32) -> bool {
        // A pure drain step (already applied by `on_repair_progress`)
        // finished every outstanding chunk: back to all-healthy.
        failed_before > 0 && self.census.failed_disks() == 0
    }

    fn on_failure(&mut self, kernel: &mut HazardKernel) -> FailureOutcome {
        let now = kernel.now();
        if self.census.failed_disks() + 1 >= self.d {
            // Essentially every disk is down: unconditionally catastrophic
            // (nothing left to place stripes on). Deliberately not counted
            // into max_concurrent, mirroring the original loop.
            self.reset_after_catastrophe(now);
            return FailureOutcome::Catastrophic {
                concurrent_failures: self.d,
                lost_stripes: self.total_stripes,
            };
        }
        let before = self.census.failed_chunks();
        self.census.add_disk_failure();
        self.pending.push_back(self.census.failed_chunks() - before);
        self.max_concurrent = self.max_concurrent.max(self.census.failed_disks());
        self.drain_paused_until = now + self.detection_hours;
        if self.census.failed_disks() >= self.threshold {
            let lambda = self.census.at_or_above(self.threshold);
            let lost = if lambda > 30.0 {
                lambda
            } else {
                sample_poisson(kernel.rng(), lambda) as f64
            };
            if lost >= 1.0 {
                let concurrent_failures = self.census.failed_disks();
                // Network repair resets the pool to healthy.
                self.reset_after_catastrophe(now);
                return FailureOutcome::Catastrophic {
                    concurrent_failures,
                    lost_stripes: lost,
                };
            }
            // Rare-stripe sampling says no stripe actually reached the
            // catastrophic multiplicity: zero those classes (drain clears
            // the top classes first by construction).
            let removed = self.census.at_or_above(self.threshold);
            let repaired = self
                .census
                .drain_priority(removed * self.threshold as f64 * 2.0);
            self.census.consume_drain(&mut self.pending, repaired);
            if self.census.failed_disks() == 0 {
                return FailureOutcome::Regenerated;
            }
        }
        FailureOutcome::Continue
    }

    fn max_concurrent(&self) -> u32 {
        self.max_concurrent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn deterministic_under_seed() {
        let model = FailureModel::Exponential { afr: 2.0 };
        let a = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 7);
        let b = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_failure_count_sane() {
        // 20 disks at AFR 1 for 50 years ≈ 1000 failures (small repair
        // windows barely matter).
        let model = FailureModel::Exponential { afr: 1.0 };
        let r = simulate_pool(&dep(MlecScheme::CC), &model, 50.0, 3);
        assert!(
            (r.disk_failures as f64 - 1000.0).abs() < 150.0,
            "failures={}",
            r.disk_failures
        );
    }

    #[test]
    fn no_catastrophe_at_negligible_afr() {
        let model = FailureModel::Exponential { afr: 1e-4 };
        let r = simulate_pool(&dep(MlecScheme::CC), &model, 100.0, 11);
        assert!(r.events.is_empty());
        let r = simulate_pool(&dep(MlecScheme::CD), &model, 100.0, 11);
        assert!(r.events.is_empty());
    }

    #[test]
    fn catastrophes_appear_at_inflated_afr() {
        // AFR 20: a 20-disk Cp pool sees 4-overlaps constantly.
        let model = FailureModel::Exponential { afr: 20.0 };
        let r = simulate_pool(&dep(MlecScheme::CC), &model, 20.0, 5);
        assert!(!r.events.is_empty());
        assert!(r.events.iter().all(|e| e.concurrent_failures >= 4));
        // Every Cp catastrophic event loses all stripes.
        let stripes = 20.0 * 156.25e6 / 20.0;
        assert!(r
            .events
            .iter()
            .all(|e| (e.lost_stripes - stripes).abs() < 1.0));
    }

    #[test]
    fn unbiased_events_carry_unit_weights() {
        // simulate_pool must stay the exact direct simulator: every event
        // weight exactly 1.0, every excursion weight exactly 1.0, and the
        // biased entry point with FailureBias::NONE is bit-identical.
        for scheme in [MlecScheme::CC, MlecScheme::CD] {
            let model = FailureModel::Exponential { afr: 10.0 };
            let direct = simulate_pool(&dep(scheme), &model, 30.0, 9);
            let via_biased = simulate_pool_biased(&dep(scheme), &model, 30.0, 9, FailureBias::NONE);
            assert_eq!(direct, via_biased);
            assert!(direct.events.iter().all(|e| e.weight == 1.0));
            assert!(direct.excursions > 0);
            assert_eq!(direct.excursion_weight, direct.excursions as f64);
            assert_eq!(direct.mean_excursion_weight(), 1.0);
        }
    }

    #[test]
    fn biased_rate_agrees_with_direct_at_inflated_afr() {
        // Unbiasedness cross-check in a regime where direct simulation is
        // cheap: the weighted biased estimate must fall within overlapping
        // 95% CIs of the direct one, and the mean excursion weight ≈ 1.
        // AFR 1.0 keeps the pool mostly healthy so excursions regenerate
        // often — the regime the weight-reset scheme is designed for (at
        // AFR ≥ 4 the pool is permanently degraded and degraded-only bias
        // degenerates into whole-path biasing).
        let model = FailureModel::Exponential { afr: 1.0 };
        let d = dep(MlecScheme::CC);
        let years = 2000.0;
        let direct = simulate_pool(&d, &model, years, 17);
        let biased = simulate_pool_biased(&d, &model, years, 18, FailureBias::degraded_only(3.0));
        let rate_d = direct.rate_per_pool_year();
        let rate_b = biased.rate_per_pool_year();
        assert!(
            direct.events.len() > 30,
            "direct events={}",
            direct.events.len()
        );
        assert!(!biased.events.is_empty());
        // Compound-Poisson standard errors: sqrt(sum w^2) / exposure.
        let se_d = (direct
            .events
            .iter()
            .map(|e| e.weight * e.weight)
            .sum::<f64>())
        .sqrt()
            / years;
        let se_b = (biased
            .events
            .iter()
            .map(|e| e.weight * e.weight)
            .sum::<f64>())
        .sqrt()
            / years;
        assert!(
            (rate_d - rate_b).abs() < 1.96 * (se_d + se_b),
            "direct={rate_d}±{se_d} biased={rate_b}±{se_b}"
        );
        let mw = biased.mean_excursion_weight();
        assert!((mw - 1.0).abs() < 0.3, "mean excursion weight {mw}");
    }

    #[test]
    fn auto_bias_observes_events_at_paper_afr() {
        // The whole point: at the paper's true 1% AFR the direct simulator
        // sees nothing, while the auto-biased one observes catastrophes and
        // reports a tiny but finite weighted rate.
        let model = FailureModel::Exponential { afr: 0.01 };
        let d = dep(MlecScheme::CC);
        let direct = simulate_pool(&d, &model, 500.0, 23);
        assert!(
            direct.events.is_empty(),
            "1% AFR should be unobservable directly"
        );
        let bias = FailureBias::auto(&d, &model);
        assert!(bias.degraded > 10.0, "auto bias={bias:?}");
        let biased = simulate_pool_biased(&d, &model, 500.0, 23, bias);
        assert!(
            !biased.events.is_empty(),
            "importance sampling must observe events at 1% AFR"
        );
        let rate = biased.rate_per_pool_year();
        assert!(rate.is_finite() && rate > 0.0, "rate={rate}");
        // Each event needed ~3 forced arrivals: weights are far below 1.
        assert!(biased
            .events
            .iter()
            .all(|e| e.weight.is_finite() && e.weight < 1e-2));
        let mw = biased.mean_excursion_weight();
        assert!(mw > 0.1 && mw < 10.0, "mean excursion weight {mw}");
    }

    #[test]
    fn declustered_pool_more_durable_than_clustered_at_same_afr() {
        // The paper's Fig 7 core finding: */D pools are orders of magnitude
        // less likely to go catastrophic, thanks to priority rebuild of the
        // tiny multi-failure stripe classes. The effect needs repair windows
        // that don't permanently overlap, so inflate AFR only to 100%/yr
        // (still 100x the paper's). Compare per disk-failure because a
        // 120-disk Dp pool sees 6x the failures of a 20-disk Cp pool.
        let model = FailureModel::Exponential { afr: 1.0 };
        let cp = simulate_pool(&dep(MlecScheme::CC), &model, 600.0, 21);
        let dp = simulate_pool(&dep(MlecScheme::CD), &model, 600.0, 21);
        let cp_per_failure = cp.events.len() as f64 / cp.disk_failures.max(1) as f64;
        let dp_per_failure = dp.events.len() as f64 / dp.disk_failures.max(1) as f64;
        assert!(
            dp_per_failure < cp_per_failure / 3.0,
            "cp={cp_per_failure} dp={dp_per_failure}"
        );
    }

    #[test]
    fn declustered_lost_stripes_are_small_fraction() {
        // When a Dp pool does go catastrophic, only a small fraction of
        // stripes are lost (the mechanism behind R_HYB's 3.1 TB).
        let model = FailureModel::Exponential { afr: 12.0 };
        let r = simulate_pool(&dep(MlecScheme::DD), &model, 150.0, 13);
        assert!(!r.events.is_empty(), "need events at this AFR");
        let total_stripes = 120.0 * 156.25e6 / 20.0;
        for e in &r.events {
            assert!(
                e.lost_stripes < total_stripes * 0.10,
                "lost={} of {total_stripes}",
                e.lost_stripes
            );
        }
    }

    #[test]
    fn merge_accumulates() {
        let model = FailureModel::Exponential { afr: 10.0 };
        let mut a = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 1);
        let b = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 2);
        let total_events = a.events.len() + b.events.len();
        let total_failures = a.disk_failures + b.disk_failures;
        let total_excursions = a.excursions + b.excursions;
        a.merge(b);
        assert_eq!(a.pool_years, 20.0);
        assert_eq!(a.events.len(), total_events);
        assert_eq!(a.disk_failures, total_failures);
        assert_eq!(a.excursions, total_excursions);
    }

    #[test]
    fn rate_estimation() {
        let r = PoolSimResult {
            pool_years: 50.0,
            events: vec![
                CatastrophicEvent {
                    time_h: 1.0,
                    concurrent_failures: 4,
                    lost_stripes: 10.0,
                    weight: 1.0,
                },
                CatastrophicEvent {
                    time_h: 2.0,
                    concurrent_failures: 4,
                    lost_stripes: 20.0,
                    weight: 1.0,
                },
            ],
            disk_failures: 100,
            max_concurrent: 4,
            excursions: 2,
            excursion_weight: 2.0,
        };
        assert!((r.rate_per_pool_year() - 0.04).abs() < 1e-12);
        assert!((r.mean_lost_stripes() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_rate_estimation() {
        // Half-weight events count half; the lost-stripe mean is weighted.
        let ev = |lost: f64, weight: f64| CatastrophicEvent {
            time_h: 1.0,
            concurrent_failures: 4,
            lost_stripes: lost,
            weight,
        };
        let r = PoolSimResult {
            pool_years: 10.0,
            events: vec![ev(10.0, 0.5), ev(40.0, 0.1)],
            disk_failures: 5,
            max_concurrent: 4,
            excursions: 3,
            excursion_weight: 2.7,
        };
        assert!((r.rate_per_pool_year() - 0.06).abs() < 1e-12);
        let expect = (0.5 * 10.0 + 0.1 * 40.0) / 0.6;
        assert!((r.mean_lost_stripes() - expect).abs() < 1e-12);
        assert!((r.mean_excursion_weight() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zero_exposure_yields_zero_rate_not_nan() {
        // A resumed manifest with zero completed trials must not report NaN.
        let r = PoolSimResult {
            pool_years: 0.0,
            events: Vec::new(),
            disk_failures: 0,
            max_concurrent: 0,
            excursions: 0,
            excursion_weight: 0.0,
        };
        assert_eq!(r.rate_per_pool_year(), 0.0);
        assert_eq!(r.mean_lost_stripes(), 0.0);
        assert_eq!(r.mean_excursion_weight(), 0.0);
    }
}
