//! Long-horizon durability simulation of a single local pool.
//!
//! This is splitting stage 1 (paper §3 "Splitting"): simulate one local pool
//! under independent disk failures and collect catastrophic-failure samples.
//! Clustered pools track per-disk rebuilds directly; declustered pools use
//! the [`crate::census::StripeCensus`] expected-value model with priority
//! (most-failed-first) rebuild and Poisson rare-stripe sampling at the
//! catastrophic boundary.
//!
//! At the paper's true 1% AFR direct simulation observes nothing; the
//! [`crate::importance`] layer fixes that: failure arrivals can be sampled
//! at a biased rate ([`FailureBias`], typically only while the pool is
//! degraded) and every emitted [`CatastrophicEvent`] carries the exact
//! likelihood-ratio weight of the true measure against the biased one, so
//! weighted rates stay unbiased. [`simulate_pool`] is the unbiased entry
//! point (all weights exactly 1.0); [`simulate_pool_biased`] takes a bias
//! and is bit-identical to it under [`FailureBias::NONE`].
//!
//! Modeling notes (see DESIGN.md):
//! - failure arrivals are exponential per surviving disk, resampled at every
//!   state change (exact for the memoryless model);
//! - each failure adds a detection delay during which repair of the pool is
//!   paused (conservative: detection of a new failure stalls the repairer);
//! - a declustered pool whose failed chunks are fully rebuilt into spare
//!   space counts as healthy (the admin rebalances in the background,
//!   paper §2.1);
//! - when the failed-disk count reaches `p_l + 1`, the *expected* number of
//!   stripes at multiplicity `p_l + 1` is `λ`; the pool is catastrophic with
//!   probability `1 - exp(-λ)` (a Poisson draw decides), which is the
//!   rare-stripe sampling that distinguishes Dp pools from Cp pools;
//! - likelihood-ratio weights reset at every return to the all-healthy
//!   state (a regeneration point of the memoryless process), which bounds
//!   weight degeneracy over long horizons without giving up exactness; the
//!   per-excursion weights are recorded and their mean is 1 in expectation
//!   (the unbiasedness diagnostic surfaced as
//!   [`PoolSimResult::mean_excursion_weight`]).

use crate::census::StripeCensus;
use crate::config::{MlecDeployment, HOURS_PER_YEAR};
use crate::failure::{sample_exponential, sample_poisson, FailureModel};
use crate::importance::{FailureBias, PathWeight};
use mlec_topology::Placement;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One catastrophic local-pool failure observed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatastrophicEvent {
    /// Simulation time of the event, hours.
    pub time_h: f64,
    /// Concurrently failed disks at the event.
    pub concurrent_failures: u32,
    /// Lost local stripes (sampled for Dp, all stripes for Cp).
    pub lost_stripes: f64,
    /// Likelihood-ratio weight of the trajectory excursion that produced
    /// this event (exactly 1.0 under unbiased simulation).
    pub weight: f64,
}

/// Aggregate result of a pool simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSimResult {
    /// Simulated pool-years.
    pub pool_years: f64,
    /// Catastrophic events observed (each carrying its importance weight).
    pub events: Vec<CatastrophicEvent>,
    /// Total disk failures generated.
    pub disk_failures: u64,
    /// Maximum concurrent failures seen.
    pub max_concurrent: u32,
    /// Completed likelihood-ratio excursions (regeneration cycles plus the
    /// censored one closed at the horizon).
    pub excursions: u64,
    /// Sum of final excursion weights; `E[weight] = 1` per excursion, so
    /// `excursion_weight / excursions ≈ 1` is the unbiasedness diagnostic.
    pub excursion_weight: f64,
}

impl PoolSimResult {
    /// Weighted catastrophic events per pool-year (0 when no exposure, so a
    /// zero-trial resume can never produce NaN).
    pub fn rate_per_pool_year(&self) -> f64 {
        if self.pool_years <= 0.0 {
            return 0.0;
        }
        self.events.iter().map(|e| e.weight).sum::<f64>() / self.pool_years
    }

    /// Weighted mean lost local stripes per catastrophic event (0 if none).
    pub fn mean_lost_stripes(&self) -> f64 {
        let sum_w: f64 = self.events.iter().map(|e| e.weight).sum();
        if sum_w <= 0.0 {
            return 0.0;
        }
        self.events
            .iter()
            .map(|e| e.weight * e.lost_stripes)
            .sum::<f64>()
            / sum_w
    }

    /// Mean final likelihood weight per excursion — ≈1 for a correctly
    /// weighted run (exactly 1 unbiased); 0 when no excursion completed.
    pub fn mean_excursion_weight(&self) -> f64 {
        if self.excursions == 0 {
            return 0.0;
        }
        self.excursion_weight / self.excursions as f64
    }

    /// Merge another run into this one (offsetting nothing — event times are
    /// per-run).
    pub fn merge(&mut self, other: PoolSimResult) {
        self.pool_years += other.pool_years;
        self.events.extend(other.events);
        self.disk_failures += other.disk_failures;
        self.max_concurrent = self.max_concurrent.max(other.max_concurrent);
        self.excursions += other.excursions;
        self.excursion_weight += other.excursion_weight;
    }
}

/// Simulate one local pool of the deployment for `years` simulated years,
/// unbiased (every event weight is exactly 1.0).
///
/// After a catastrophic event the pool is reset to healthy (the network
/// level repairs it; the sojourn time is accounted analytically per repair
/// method by the splitting estimator).
pub fn simulate_pool(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    years: f64,
    seed: u64,
) -> PoolSimResult {
    simulate_pool_biased(dep, failure_model, years, seed, FailureBias::NONE)
}

/// Simulate one local pool with importance-sampled failure arrivals.
///
/// Arrivals are drawn at `bias.multiplier(failed_disks) ×` the true rate and
/// every emitted event carries the exact likelihood-ratio weight, so
/// `Σ weight / pool_years` estimates the true catastrophic rate at any bias.
/// With [`FailureBias::NONE`] this is bit-identical to [`simulate_pool`]
/// (the RNG consumes the same draws).
pub fn simulate_pool_biased(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    years: f64,
    seed: u64,
    bias: FailureBias,
) -> PoolSimResult {
    match dep.scheme.local {
        Placement::Clustered => simulate_clustered_pool(dep, failure_model, years, seed, bias),
        Placement::Declustered => simulate_declustered_pool(dep, failure_model, years, seed, bias),
    }
}

/// Per-disk failure rate (events/hour) implied by the model; traces are not
/// supported by the closed-loop pool simulator (they drive the burst and
/// system paths instead).
///
/// For Weibull this is the renewal rate `1 / MTTF` with the MTTF computed by
/// the Lanczos gamma in [`crate::failure`] — an earlier truncated-Stirling
/// shortcut here was ~0.2% off near shape 1, silently biasing every Weibull
/// per-disk rate.
fn per_disk_rate(model: &FailureModel) -> f64 {
    match model {
        FailureModel::Exponential { afr } => afr / HOURS_PER_YEAR,
        FailureModel::Weibull { .. } => 1.0 / model.mttf_hours(),
        FailureModel::Trace { .. } => {
            panic!("trace-driven failures are not supported by the pool simulator")
        }
    }
}

fn simulate_clustered_pool(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    years: f64,
    seed: u64,
    bias: FailureBias,
) -> PoolSimResult {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let pools = dep.local_pools();
    let d = pools.pool_size();
    let threshold = dep.params.local.p as u32 + 1;
    let rate = per_disk_rate(failure_model);
    let repair_hours = dep.config.detection_hours
        + dep.geometry.disk_capacity_tb * 1e6 / dep.config.disk_repair_bw_mbs() / 3600.0;
    let horizon = years * HOURS_PER_YEAR;
    let total_stripes = d as f64 * dep.geometry.chunks_per_disk() / dep.local_width() as f64;

    let mut now = 0.0f64;
    // Repair-completion times of currently failed disks.
    let mut active: Vec<f64> = Vec::new();
    let mut events = Vec::new();
    let mut disk_failures = 0u64;
    let mut max_concurrent = 0u32;
    let mut pw = PathWeight::new();
    let mut excursions = 0u64;
    let mut excursion_weight = 0.0f64;

    loop {
        let f = active.len() as u32;
        let mult = bias.multiplier(f);
        let true_rate = (d - f) as f64 * rate;
        let next_fail = now + sample_exponential(&mut rng, mult * true_rate);
        let next_repair = active.iter().copied().fold(f64::INFINITY, f64::min);
        if next_fail.min(next_repair) > horizon {
            // Censored interval to the horizon, then close the in-progress
            // excursion (valid by optional stopping at a bounded time).
            pw.exposure(mult, true_rate, horizon - now);
            excursions += 1;
            excursion_weight += pw.weight();
            break;
        }
        if next_repair <= next_fail {
            pw.exposure(mult, true_rate, next_repair - now);
            now = next_repair;
            active.retain(|&t| t > now);
            if active.is_empty() {
                // Back to all-healthy: regeneration point, weight resets.
                excursions += 1;
                excursion_weight += pw.weight();
                pw.reset();
            }
        } else {
            pw.exposure(mult, true_rate, next_fail - now);
            now = next_fail;
            disk_failures += 1;
            pw.event(mult);
            active.push(now + repair_hours);
            max_concurrent = max_concurrent.max(active.len() as u32);
            if active.len() as u32 >= threshold {
                // Every stripe spans the pool: all stripes are lost.
                events.push(CatastrophicEvent {
                    time_h: now,
                    concurrent_failures: active.len() as u32,
                    lost_stripes: total_stripes,
                    weight: pw.weight(),
                });
                active.clear(); // network repair resets the pool
                excursions += 1;
                excursion_weight += pw.weight();
                pw.reset();
            }
        }
    }

    PoolSimResult {
        pool_years: years,
        events,
        disk_failures,
        max_concurrent,
        excursions,
        excursion_weight,
    }
}

fn simulate_declustered_pool(
    dep: &MlecDeployment,
    failure_model: &FailureModel,
    years: f64,
    seed: u64,
    bias: FailureBias,
) -> PoolSimResult {
    let mut rng = ChaCha12Rng::seed_from_u64(
        mlec_runner::SeedStream::new(seed, "pool_sim/declustered").trial_seed(0),
    );
    let pools = dep.local_pools();
    let d = pools.pool_size();
    let w = dep.local_width();
    let threshold = dep.params.local.p as u32 + 1;
    let rate = per_disk_rate(failure_model);
    let horizon = years * HOURS_PER_YEAR;
    let chunk_mb = dep.geometry.chunk_kb / 1e3;
    let total_stripes = d as f64 * dep.geometry.chunks_per_disk() / w as f64;

    let mut census = StripeCensus::new(d, w, total_stripes);
    let mut now = 0.0f64;
    // Repair is paused until the most recent failure is detected.
    let mut drain_paused_until = 0.0f64;
    // FIFO of per-failure outstanding chunk volumes: when cumulative drain
    // covers the head entry, that disk's data is fully in spare space and
    // the disk is released (it no longer constrains stripe placement).
    let mut pending: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
    let mut events = Vec::new();
    let mut disk_failures = 0u64;
    let mut max_concurrent = 0u32;
    let mut pw = PathWeight::new();
    let mut excursions = 0u64;
    let mut excursion_weight = 0.0f64;

    // Consume `repaired` chunks of drain from the FIFO, releasing disks
    // whose volumes are fully covered.
    fn consume_drain(
        census: &mut StripeCensus,
        pending: &mut std::collections::VecDeque<f64>,
        mut repaired: f64,
    ) {
        while repaired > 0.0 {
            let Some(head) = pending.front_mut() else {
                break;
            };
            if *head <= repaired + 1e-9 {
                repaired -= *head;
                pending.pop_front();
                census.release_disk();
            } else {
                *head -= repaired;
                break;
            }
        }
    }

    loop {
        let f = census.failed_disks();
        let mult = bias.multiplier(f);
        let true_rate = (d - f) as f64 * rate;
        let next_fail = now + sample_exponential(&mut rng, mult * true_rate);
        // Time at which the current drain would finish everything.
        let drain_rate_chunks_per_h =
            crate::bandwidth::local_repair_bw_mbs(dep, 1, f) * 3600.0 / chunk_mb;
        let remaining_chunks = census.failed_chunks();
        let drain_done = if remaining_chunks > 0.5 {
            // Floor the step so floating-point rounding at large `now` can
            // never produce a zero-length step (which would livelock).
            (drain_paused_until.max(now) + remaining_chunks / drain_rate_chunks_per_h)
                .max(now + 1e-6)
        } else {
            f64::INFINITY
        };

        let step_to = next_fail.min(drain_done);
        if step_to > horizon {
            pw.exposure(mult, true_rate, horizon - now);
            excursions += 1;
            excursion_weight += pw.weight();
            break;
        }
        // The failure intensity is held at the interval-start value over
        // [now, step_to] by both the direct and the biased simulator, so
        // this survival factor is the exact likelihood ratio.
        pw.exposure(mult, true_rate, step_to - now);

        // Apply the drain that happened over [now, step_to].
        let drain_start = drain_paused_until.max(now);
        if step_to > drain_start && remaining_chunks > 1e-9 {
            let budget = (step_to - drain_start) * drain_rate_chunks_per_h;
            let repaired = census.drain_priority(budget);
            consume_drain(&mut census, &mut pending, repaired);
            if census.failed_chunks() < 0.5 {
                pending.clear();
            }
        }
        now = step_to;

        if next_fail <= drain_done {
            // A new disk failure escalates the census.
            disk_failures += 1;
            pw.event(mult);
            if census.failed_disks() + 1 >= d {
                // Essentially every disk is down: unconditionally
                // catastrophic (nothing left to place stripes on).
                events.push(CatastrophicEvent {
                    time_h: now,
                    concurrent_failures: d,
                    lost_stripes: total_stripes,
                    weight: pw.weight(),
                });
                census = StripeCensus::new(d, w, total_stripes);
                pending.clear();
                drain_paused_until = now;
                excursions += 1;
                excursion_weight += pw.weight();
                pw.reset();
                continue;
            }
            let before = census.failed_chunks();
            census.add_disk_failure();
            pending.push_back(census.failed_chunks() - before);
            max_concurrent = max_concurrent.max(census.failed_disks());
            drain_paused_until = now + dep.config.detection_hours;
            if census.failed_disks() >= threshold {
                let lambda = census.at_or_above(threshold);
                let lost = if lambda > 30.0 {
                    lambda
                } else {
                    sample_poisson(&mut rng, lambda) as f64
                };
                if lost >= 1.0 {
                    events.push(CatastrophicEvent {
                        time_h: now,
                        concurrent_failures: census.failed_disks(),
                        lost_stripes: lost,
                        weight: pw.weight(),
                    });
                    // Network repair resets the pool to healthy.
                    census = StripeCensus::new(d, w, total_stripes);
                    pending.clear();
                    drain_paused_until = now;
                    excursions += 1;
                    excursion_weight += pw.weight();
                    pw.reset();
                } else {
                    // Rare-stripe sampling says no stripe actually reached
                    // the catastrophic multiplicity: zero those classes
                    // (drain clears the top classes first by construction).
                    let removed = census.at_or_above(threshold);
                    let repaired = census.drain_priority(removed * threshold as f64 * 2.0);
                    consume_drain(&mut census, &mut pending, repaired);
                    if census.failed_disks() == 0 {
                        excursions += 1;
                        excursion_weight += pw.weight();
                        pw.reset();
                    }
                }
            }
        } else if f > 0 && census.failed_disks() == 0 {
            // A pure drain step finished every outstanding chunk: back to
            // all-healthy, regeneration point.
            excursions += 1;
            excursion_weight += pw.weight();
            pw.reset();
        }
    }

    PoolSimResult {
        pool_years: years,
        events,
        disk_failures,
        max_concurrent,
        excursions,
        excursion_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlec_topology::MlecScheme;

    fn dep(scheme: MlecScheme) -> MlecDeployment {
        MlecDeployment::paper_default(scheme)
    }

    #[test]
    fn deterministic_under_seed() {
        let model = FailureModel::Exponential { afr: 2.0 };
        let a = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 7);
        let b = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_failure_count_sane() {
        // 20 disks at AFR 1 for 50 years ≈ 1000 failures (small repair
        // windows barely matter).
        let model = FailureModel::Exponential { afr: 1.0 };
        let r = simulate_pool(&dep(MlecScheme::CC), &model, 50.0, 3);
        assert!(
            (r.disk_failures as f64 - 1000.0).abs() < 150.0,
            "failures={}",
            r.disk_failures
        );
    }

    #[test]
    fn no_catastrophe_at_negligible_afr() {
        let model = FailureModel::Exponential { afr: 1e-4 };
        let r = simulate_pool(&dep(MlecScheme::CC), &model, 100.0, 11);
        assert!(r.events.is_empty());
        let r = simulate_pool(&dep(MlecScheme::CD), &model, 100.0, 11);
        assert!(r.events.is_empty());
    }

    #[test]
    fn catastrophes_appear_at_inflated_afr() {
        // AFR 20: a 20-disk Cp pool sees 4-overlaps constantly.
        let model = FailureModel::Exponential { afr: 20.0 };
        let r = simulate_pool(&dep(MlecScheme::CC), &model, 20.0, 5);
        assert!(!r.events.is_empty());
        assert!(r.events.iter().all(|e| e.concurrent_failures >= 4));
        // Every Cp catastrophic event loses all stripes.
        let stripes = 20.0 * 156.25e6 / 20.0;
        assert!(r
            .events
            .iter()
            .all(|e| (e.lost_stripes - stripes).abs() < 1.0));
    }

    #[test]
    fn unbiased_events_carry_unit_weights() {
        // simulate_pool must stay the exact direct simulator: every event
        // weight exactly 1.0, every excursion weight exactly 1.0, and the
        // biased entry point with FailureBias::NONE is bit-identical.
        for scheme in [MlecScheme::CC, MlecScheme::CD] {
            let model = FailureModel::Exponential { afr: 10.0 };
            let direct = simulate_pool(&dep(scheme), &model, 30.0, 9);
            let via_biased = simulate_pool_biased(&dep(scheme), &model, 30.0, 9, FailureBias::NONE);
            assert_eq!(direct, via_biased);
            assert!(direct.events.iter().all(|e| e.weight == 1.0));
            assert!(direct.excursions > 0);
            assert_eq!(direct.excursion_weight, direct.excursions as f64);
            assert_eq!(direct.mean_excursion_weight(), 1.0);
        }
    }

    #[test]
    fn biased_rate_agrees_with_direct_at_inflated_afr() {
        // Unbiasedness cross-check in a regime where direct simulation is
        // cheap: the weighted biased estimate must fall within overlapping
        // 95% CIs of the direct one, and the mean excursion weight ≈ 1.
        // AFR 1.0 keeps the pool mostly healthy so excursions regenerate
        // often — the regime the weight-reset scheme is designed for (at
        // AFR ≥ 4 the pool is permanently degraded and degraded-only bias
        // degenerates into whole-path biasing).
        let model = FailureModel::Exponential { afr: 1.0 };
        let d = dep(MlecScheme::CC);
        let years = 2000.0;
        let direct = simulate_pool(&d, &model, years, 17);
        let biased = simulate_pool_biased(&d, &model, years, 18, FailureBias::degraded_only(3.0));
        let rate_d = direct.rate_per_pool_year();
        let rate_b = biased.rate_per_pool_year();
        assert!(
            direct.events.len() > 30,
            "direct events={}",
            direct.events.len()
        );
        assert!(!biased.events.is_empty());
        // Compound-Poisson standard errors: sqrt(sum w^2) / exposure.
        let se_d = (direct
            .events
            .iter()
            .map(|e| e.weight * e.weight)
            .sum::<f64>())
        .sqrt()
            / years;
        let se_b = (biased
            .events
            .iter()
            .map(|e| e.weight * e.weight)
            .sum::<f64>())
        .sqrt()
            / years;
        assert!(
            (rate_d - rate_b).abs() < 1.96 * (se_d + se_b),
            "direct={rate_d}±{se_d} biased={rate_b}±{se_b}"
        );
        let mw = biased.mean_excursion_weight();
        assert!((mw - 1.0).abs() < 0.3, "mean excursion weight {mw}");
    }

    #[test]
    fn auto_bias_observes_events_at_paper_afr() {
        // The whole point: at the paper's true 1% AFR the direct simulator
        // sees nothing, while the auto-biased one observes catastrophes and
        // reports a tiny but finite weighted rate.
        let model = FailureModel::Exponential { afr: 0.01 };
        let d = dep(MlecScheme::CC);
        let direct = simulate_pool(&d, &model, 500.0, 23);
        assert!(
            direct.events.is_empty(),
            "1% AFR should be unobservable directly"
        );
        let bias = FailureBias::auto(&d, &model);
        assert!(bias.degraded > 10.0, "auto bias={:?}", bias);
        let biased = simulate_pool_biased(&d, &model, 500.0, 23, bias);
        assert!(
            !biased.events.is_empty(),
            "importance sampling must observe events at 1% AFR"
        );
        let rate = biased.rate_per_pool_year();
        assert!(rate.is_finite() && rate > 0.0, "rate={rate}");
        // Each event needed ~3 forced arrivals: weights are far below 1.
        assert!(biased
            .events
            .iter()
            .all(|e| e.weight.is_finite() && e.weight < 1e-2));
        let mw = biased.mean_excursion_weight();
        assert!(mw > 0.1 && mw < 10.0, "mean excursion weight {mw}");
    }

    #[test]
    fn declustered_pool_more_durable_than_clustered_at_same_afr() {
        // The paper's Fig 7 core finding: */D pools are orders of magnitude
        // less likely to go catastrophic, thanks to priority rebuild of the
        // tiny multi-failure stripe classes. The effect needs repair windows
        // that don't permanently overlap, so inflate AFR only to 100%/yr
        // (still 100x the paper's). Compare per disk-failure because a
        // 120-disk Dp pool sees 6x the failures of a 20-disk Cp pool.
        let model = FailureModel::Exponential { afr: 1.0 };
        let cp = simulate_pool(&dep(MlecScheme::CC), &model, 600.0, 21);
        let dp = simulate_pool(&dep(MlecScheme::CD), &model, 600.0, 21);
        let cp_per_failure = cp.events.len() as f64 / cp.disk_failures.max(1) as f64;
        let dp_per_failure = dp.events.len() as f64 / dp.disk_failures.max(1) as f64;
        assert!(
            dp_per_failure < cp_per_failure / 3.0,
            "cp={cp_per_failure} dp={dp_per_failure}"
        );
    }

    #[test]
    fn declustered_lost_stripes_are_small_fraction() {
        // When a Dp pool does go catastrophic, only a small fraction of
        // stripes are lost (the mechanism behind R_HYB's 3.1 TB).
        let model = FailureModel::Exponential { afr: 12.0 };
        let r = simulate_pool(&dep(MlecScheme::DD), &model, 150.0, 13);
        assert!(!r.events.is_empty(), "need events at this AFR");
        let total_stripes = 120.0 * 156.25e6 / 20.0;
        for e in &r.events {
            assert!(
                e.lost_stripes < total_stripes * 0.10,
                "lost={} of {total_stripes}",
                e.lost_stripes
            );
        }
    }

    #[test]
    fn merge_accumulates() {
        let model = FailureModel::Exponential { afr: 10.0 };
        let mut a = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 1);
        let b = simulate_pool(&dep(MlecScheme::CC), &model, 10.0, 2);
        let total_events = a.events.len() + b.events.len();
        let total_failures = a.disk_failures + b.disk_failures;
        let total_excursions = a.excursions + b.excursions;
        a.merge(b);
        assert_eq!(a.pool_years, 20.0);
        assert_eq!(a.events.len(), total_events);
        assert_eq!(a.disk_failures, total_failures);
        assert_eq!(a.excursions, total_excursions);
    }

    #[test]
    fn rate_estimation() {
        let r = PoolSimResult {
            pool_years: 50.0,
            events: vec![
                CatastrophicEvent {
                    time_h: 1.0,
                    concurrent_failures: 4,
                    lost_stripes: 10.0,
                    weight: 1.0,
                },
                CatastrophicEvent {
                    time_h: 2.0,
                    concurrent_failures: 4,
                    lost_stripes: 20.0,
                    weight: 1.0,
                },
            ],
            disk_failures: 100,
            max_concurrent: 4,
            excursions: 2,
            excursion_weight: 2.0,
        };
        assert!((r.rate_per_pool_year() - 0.04).abs() < 1e-12);
        assert!((r.mean_lost_stripes() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_rate_estimation() {
        // Half-weight events count half; the lost-stripe mean is weighted.
        let ev = |lost: f64, weight: f64| CatastrophicEvent {
            time_h: 1.0,
            concurrent_failures: 4,
            lost_stripes: lost,
            weight,
        };
        let r = PoolSimResult {
            pool_years: 10.0,
            events: vec![ev(10.0, 0.5), ev(40.0, 0.1)],
            disk_failures: 5,
            max_concurrent: 4,
            excursions: 3,
            excursion_weight: 2.7,
        };
        assert!((r.rate_per_pool_year() - 0.06).abs() < 1e-12);
        let expect = (0.5 * 10.0 + 0.1 * 40.0) / 0.6;
        assert!((r.mean_lost_stripes() - expect).abs() < 1e-12);
        assert!((r.mean_excursion_weight() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zero_exposure_yields_zero_rate_not_nan() {
        // A resumed manifest with zero completed trials must not report NaN.
        let r = PoolSimResult {
            pool_years: 0.0,
            events: Vec::new(),
            disk_failures: 0,
            max_concurrent: 0,
            excursions: 0,
            excursion_weight: 0.0,
        };
        assert_eq!(r.rate_per_pool_year(), 0.0);
        assert_eq!(r.mean_lost_stripes(), 0.0);
        assert_eq!(r.mean_excursion_weight(), 0.0);
    }
}
