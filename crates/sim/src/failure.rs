//! Disk time-to-failure models (paper §3 "Fault simulation": distributions,
//! rules, or real traces).
//!
//! The paper's durability results use independent exponential failures with
//! a 1% annual failure rate; Weibull is provided for infant-mortality /
//! wear-out sensitivity studies and trace playback for replaying recorded
//! failure logs.

use rand::Rng;

/// A time-to-failure model for a single disk.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Memoryless failures at a constant hazard rate (AFR per year).
    Exponential {
        /// Annual failure rate, e.g. 0.01.
        afr: f64,
    },
    /// Weibull-distributed time to failure.
    Weibull {
        /// Shape parameter (`< 1` infant mortality, `> 1` wear-out).
        shape: f64,
        /// Scale parameter in hours (the 63.2% life quantile).
        scale_hours: f64,
    },
    /// Replay an explicit list of failure times (hours, ascending).
    Trace {
        /// Failure timestamps in hours.
        times: Vec<f64>,
    },
}

impl FailureModel {
    /// The paper's default: exponential with 1% AFR.
    pub fn paper_default() -> FailureModel {
        FailureModel::Exponential { afr: 0.01 }
    }

    /// Sample a time-to-failure in hours for a fresh disk.
    ///
    /// For [`FailureModel::Trace`], `index` selects the next trace entry and
    /// the returned value is the absolute trace time (callers treat trace
    /// playback specially); for the distributions `index` is ignored.
    pub fn sample_ttf_hours<R: Rng>(&self, rng: &mut R, index: usize) -> f64 {
        match self {
            FailureModel::Exponential { afr } => {
                let rate = afr / crate::config::HOURS_PER_YEAR;
                sample_exponential(rng, rate)
            }
            FailureModel::Weibull { shape, scale_hours } => {
                // Inverse-CDF: t = scale * (-ln(1-u))^(1/shape).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                scale_hours * (-u.ln()).powf(1.0 / shape)
            }
            FailureModel::Trace { times } => times.get(index).copied().unwrap_or(f64::INFINITY),
        }
    }

    /// Mean time to failure (infinite for an exhausted trace).
    pub fn mttf(&self) -> mlec_units::Duration {
        let hours = match self {
            FailureModel::Exponential { afr } => crate::config::HOURS_PER_YEAR / afr,
            FailureModel::Weibull { shape, scale_hours } => {
                scale_hours * gamma_fn(1.0 + 1.0 / shape)
            }
            FailureModel::Trace { times } => {
                if times.is_empty() {
                    f64::INFINITY
                } else {
                    // Mean inter-arrival spacing of the trace.
                    // PANICS: the enclosing branch established the trace has events.
                    let span = times.last().unwrap() - times.first().unwrap();
                    if times.len() > 1 {
                        span / (times.len() - 1) as f64
                    } else {
                        f64::INFINITY
                    }
                }
            }
        };
        mlec_units::Duration::from_hours(hours)
    }
}

/// Sample an exponential variate with the given rate (events/hour).
pub fn sample_exponential<R: Rng>(rng: &mut R, rate_per_hour: f64) -> f64 {
    if rate_per_hour <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_per_hour
}

/// Sample a Poisson variate (Knuth's method for small means, normal
/// approximation above 64 — the census code only needs "0 / small / huge").
pub fn sample_poisson<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    assert!(!mean.is_nan(), "Poisson mean must not be NaN");
    if mean <= 0.0 {
        return 0;
    }
    if mean.is_infinite() {
        return u64::MAX;
    }
    if mean > 64.0 {
        // Normal approximation, clamped at zero.
        let z: f64 = sample_standard_normal(rng);
        return (mean + z * mean.sqrt()).round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Box–Muller standard normal.
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lanczos approximation of the Gamma function (for Weibull MTTF and the
/// pool simulator's Weibull renewal rate — the truncated Stirling series
/// this crate once used for the latter was off by ~0.2% near `x = 1`,
/// silently biasing every Weibull per-disk rate).
pub(crate) fn gamma_fn(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    // Canonical published coefficients, kept verbatim.
    #[allow(clippy::excessive_precision)]
    const C: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        // PANICS: `C` is a fixed non-empty Lanczos coefficient table.
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn exponential_mean_matches_afr() {
        let model = FailureModel::Exponential { afr: 0.5 };
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| model.sample_ttf_hours(&mut rng, i))
            .sum::<f64>()
            / n as f64;
        let expected = crate::config::HOURS_PER_YEAR / 0.5;
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "mean={mean} expected={expected}"
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let model = FailureModel::Weibull {
            shape: 1.0,
            scale_hours: 1000.0,
        };
        assert!((model.mttf().to_hours() - 1000.0).abs() < 1.0);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| model.sample_ttf_hours(&mut rng, i))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1000.0).abs() / 1000.0 < 0.03, "mean={mean}");
    }

    #[test]
    fn weibull_wearout_mttf() {
        // Shape 2: MTTF = scale * Gamma(1.5) = scale * sqrt(pi)/2.
        let model = FailureModel::Weibull {
            shape: 2.0,
            scale_hours: 100.0,
        };
        let expected = 100.0 * (std::f64::consts::PI).sqrt() / 2.0;
        assert!((model.mttf().to_hours() - expected).abs() < 0.01);
    }

    #[test]
    fn lanczos_gamma_matches_known_values() {
        // The accuracy bar the pool simulator's Weibull rate depends on:
        // a truncated Stirling series is ~2e-3 off near x = 1; Lanczos is
        // good to ~1e-13 relative everywhere we evaluate it.
        let cases = [
            (0.5, std::f64::consts::PI.sqrt()),
            (1.0, 1.0),
            (1.5, std::f64::consts::PI.sqrt() / 2.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (7.5, 1871.254305797788),
        ];
        for (x, expect) in cases {
            let got = gamma_fn(x);
            assert!(
                ((got - expect) / expect).abs() < 1e-12,
                "Gamma({x}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn lanczos_gamma_beats_truncated_stirling_near_one() {
        // Regression for the statistical_gamma bug: the old one-term
        // Stirling series was ~0.2% off at Gamma(1 + 1/shape) for shape
        // near 1, the exact regime every Weibull per-disk rate lives in.
        let stirling = |v: f64| -> f64 {
            ((v - 0.5) * v.ln() - v + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * v))
                .exp()
        };
        let x = 1.1; // Gamma(1 + 1/shape) for a shape-10 wear-out Weibull
        let exact = gamma_fn(x);
        let old = stirling(x);
        assert!(
            ((exact - 0.951_350_769_866_873_2) / exact).abs() < 1e-12,
            "exact={exact}"
        );
        assert!(
            ((old - exact) / exact).abs() > 1e-3,
            "Stirling at {x} should be visibly wrong: old={old} exact={exact}"
        );
    }

    #[test]
    fn trace_playback_in_order() {
        let model = FailureModel::Trace {
            times: vec![5.0, 9.0, 100.0],
        };
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(model.sample_ttf_hours(&mut rng, 0), 5.0);
        assert_eq!(model.sample_ttf_hours(&mut rng, 1), 9.0);
        assert_eq!(model.sample_ttf_hours(&mut rng, 2), 100.0);
        assert_eq!(model.sample_ttf_hours(&mut rng, 3), f64::INFINITY);
    }

    #[test]
    fn poisson_mean_and_zero() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        let n = 20_000;
        for mean in [0.5f64, 5.0, 200.0] {
            let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, mean)).sum();
            let empirical = total as f64 / n as f64;
            assert!(
                (empirical - mean).abs() / mean < 0.05,
                "mean={mean} empirical={empirical}"
            );
        }
    }

    #[test]
    fn exponential_zero_rate_never_fires() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        assert_eq!(sample_exponential(&mut rng, 0.0), f64::INFINITY);
    }
}
