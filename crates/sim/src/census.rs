//! The stripe-census model for declustered pools.
//!
//! A 120-disk local-Dp pool holds ~10^9 stripes; materializing them is
//! impossible at simulation scale. The census tracks the *expected number of
//! stripes by failure multiplicity* `n[m]` (stripes with exactly `m` failed
//! chunks) and updates it exactly under the declustered-placement
//! hypergeometric law:
//!
//! - when a new disk fails while `f_prev` disks are already failed, a stripe
//!   currently at multiplicity `m` gains a failed chunk with probability
//!   `(w - m) / (D - f_prev)` (its `w - m` surviving chunks are uniform over
//!   the `D - f_prev` surviving disks);
//! - priority repair drains the highest multiplicity class first (the
//!   paper's "high-priority stripes ... can be prioritized and repaired
//!   quickly", §4.1.3), rebuilding all of a stripe's missing chunks at once.
//!
//! The same machinery answers the static combinatorial questions used by the
//! traffic analysis (Fig 8): expected lost stripes when `p_l + 1` disks fail
//! simultaneously.

/// Probability that a random declustered stripe of width `w` in a `d`-disk
/// pool covers **all** of `f` specific failed disks.
pub fn prob_cover_all(d: u32, w: u32, f: u32) -> f64 {
    if f > w || f > d {
        return 0.0;
    }
    (0..f).fold(1.0, |acc, i| acc * (w - i) as f64 / (d - i) as f64)
}

/// Hypergeometric pmf: probability that a random `w`-subset of `d` disks
/// contains exactly `m` of `f` marked disks.
pub fn hypergeom_pmf(d: u32, w: u32, f: u32, m: u32) -> f64 {
    if m > f || m > w || (w - m) > (d - f) {
        return 0.0;
    }
    // C(f, m) * C(d-f, w-m) / C(d, w) computed in log space for stability.
    (ln_choose(f, m) + ln_choose(d - f, w - m) - ln_choose(d, w)).exp()
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_choose(n: u32, k: u32) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!`: tabulated cumulative sums below 1024 (covering all
/// pool/rack-scale arguments exactly to f64 rounding), Stirling series with
/// two correction terms above (error < 1e-17 relative there).
pub fn ln_factorial(n: u32) -> f64 {
    const TABLE_SIZE: usize = 1024;
    static TABLE: std::sync::OnceLock<Vec<f64>> = std::sync::OnceLock::new();
    if (n as usize) < TABLE_SIZE {
        let table = TABLE.get_or_init(|| {
            let mut t = Vec::with_capacity(TABLE_SIZE);
            t.push(0.0);
            // Kahan summation keeps the cumulative error near one ulp.
            let mut sum = 0.0f64;
            let mut c = 0.0f64;
            for i in 1..TABLE_SIZE {
                let y = (i as f64).ln() - c;
                let s = sum + y;
                c = (s - sum) - y;
                sum = s;
                t.push(sum);
            }
            t
        });
        // PANICS: the enclosing branch checks `n < TABLE_SIZE`, the table's exact length.
        table[n as usize]
    } else {
        let x = n as f64 + 1.0;
        (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x.powi(3))
    }
}

/// Expected-value census of stripes by failure multiplicity in one
/// declustered pool.
#[derive(Debug, Clone, PartialEq)]
pub struct StripeCensus {
    /// Pool size in disks.
    pub pool_disks: u32,
    /// Stripe width `k_l + p_l`.
    pub stripe_width: u32,
    /// `n[m]` = expected stripes with exactly `m` failed chunks,
    /// `m in 0..=stripe_width`.
    counts: Vec<f64>,
    /// Currently failed disks reflected in the census.
    failed_disks: u32,
}

impl StripeCensus {
    /// A healthy pool with `total_stripes` stripes.
    pub fn new(pool_disks: u32, stripe_width: u32, total_stripes: f64) -> StripeCensus {
        assert!(stripe_width >= 2 && stripe_width <= pool_disks);
        let mut counts = vec![0.0; stripe_width as usize + 1];
        // PANICS: `counts` was just built with `stripe_width + 1 >= 3` entries.
        counts[0] = total_stripes;
        StripeCensus {
            pool_disks,
            stripe_width,
            counts,
            failed_disks: 0,
        }
    }

    /// Expected stripes at exactly multiplicity `m`.
    pub fn at(&self, m: u32) -> f64 {
        self.counts.get(m as usize).copied().unwrap_or(0.0)
    }

    /// Expected stripes at multiplicity `m` or higher.
    pub fn at_or_above(&self, m: u32) -> f64 {
        self.counts.iter().skip(m as usize).sum()
    }

    /// Currently failed disks.
    pub fn failed_disks(&self) -> u32 {
        self.failed_disks
    }

    /// Total stripes (conserved by all operations).
    pub fn total_stripes(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Failed chunks outstanding (sum of `m * n[m]`).
    pub fn failed_chunks(&self) -> f64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(m, &n)| m as f64 * n)
            .sum()
    }

    /// Register a new disk failure: every stripe at multiplicity `m` gains a
    /// failed chunk with probability `(w - m) / (D - f_prev)`.
    ///
    /// # Panics
    /// Panics if every disk is already failed (the caller must treat the
    /// pool as lost before that point).
    pub fn add_disk_failure(&mut self) {
        let d = self.pool_disks as f64;
        let f_prev = self.failed_disks as f64;
        assert!(self.failed_disks < self.pool_disks, "no disks left to fail");
        let survivors = d - f_prev;
        // Walk top-down so each class is promoted from its pre-update value.
        for m in (0..self.stripe_width as usize).rev() {
            let q = (self.stripe_width as f64 - m as f64) / survivors;
            // PANICS: `m < stripe_width` and `counts.len() == stripe_width + 1`, so `m` is in bounds.
            let moved = self.counts[m] * q;
            // PANICS: same bound: `m < counts.len()`.
            self.counts[m] -= moved;
            // PANICS: `m + 1 <= stripe_width < counts.len()`.
            self.counts[m + 1] += moved;
        }
        self.failed_disks += 1;
    }

    /// Drain up to `chunk_budget` failed chunks of repair work, highest
    /// multiplicity class first (priority rebuild). Repairing a class-`m`
    /// stripe costs `m` chunks of writes and returns it to class 0.
    /// Returns the chunks actually repaired.
    pub fn drain_priority(&mut self, mut chunk_budget: f64) -> f64 {
        let mut repaired = 0.0;
        for m in (1..=self.stripe_width as usize).rev() {
            if chunk_budget <= 0.0 {
                break;
            }
            // PANICS: loop bound `m <= stripe_width`, and `counts.len() == stripe_width + 1`.
            let class_chunks = self.counts[m] * m as f64;
            if class_chunks <= 0.0 {
                continue;
            }
            let take_chunks = class_chunks.min(chunk_budget);
            let take_stripes = take_chunks / m as f64;
            // PANICS: same loop bound keeps `m` in range; index 0 always exists.
            self.counts[m] -= take_stripes;
            // PANICS: index 0 always exists (`counts` is never empty).
            self.counts[0] += take_stripes;
            chunk_budget -= take_chunks;
            repaired += take_chunks;
        }
        // All failed data rebuilt: the failed disks no longer hold live
        // chunks; the pool is effectively healthy (spare-space model — the
        // admin rebalances onto replacement disks in the background). A
        // residue below half a chunk is floating-point noise at the 10^8
        // expected-count scale, not data.
        if self.failed_chunks() < 0.5 {
            self.failed_disks = 0;
            let total = self.total_stripes();
            self.counts.fill(0.0);
            // PANICS: index 0 always exists (`counts` is never empty).
            self.counts[0] = total;
        }
        repaired
    }

    /// Release one failed disk without touching the stripe classes: its
    /// lost chunks have been rebuilt into spare space, so it no longer
    /// constrains future stripe-placement updates. Used by the pool
    /// simulator's FIFO disk-exit approximation.
    pub fn release_disk(&mut self) {
        self.failed_disks = self.failed_disks.saturating_sub(1);
    }

    /// Consume `repaired` chunks of completed drain against a FIFO of
    /// per-failure outstanding chunk volumes, releasing (oldest first) every
    /// disk whose volume is fully covered — the spare-drain disk-exit model
    /// shared by the pool and system simulators.
    ///
    /// A head entry within `1e-9` chunks of the remaining budget counts as
    /// covered (floating-point slack at the 10^8 expected-count scale); a
    /// partial head is reduced in place and stops the walk. The helper never
    /// clears the FIFO wholesale — callers that treat a fully-drained census
    /// as all-healthy do that themselves.
    pub fn consume_drain(
        &mut self,
        pending: &mut std::collections::VecDeque<f64>,
        mut repaired: f64,
    ) {
        while repaired > 0.0 {
            let Some(head) = pending.front_mut() else {
                break;
            };
            if *head <= repaired + 1e-9 {
                repaired -= *head;
                pending.pop_front();
                self.release_disk();
            } else {
                *head -= repaired;
                break;
            }
        }
    }

    /// Hours needed to drain everything at or above multiplicity `m`, given
    /// a repair rate in chunks/hour.
    pub fn drain_hours_at_or_above(&self, m: u32, chunks_per_hour: f64) -> f64 {
        if chunks_per_hour <= 0.0 {
            return f64::INFINITY;
        }
        let chunks: f64 = self
            .counts
            .iter()
            .enumerate()
            .skip(m as usize)
            .map(|(mm, &n)| mm as f64 * n)
            .sum();
        chunks / chunks_per_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_all_matches_paper_fig8_fraction() {
        // (17+3) stripes in a 120-disk pool, 4 failed disks: the fraction of
        // stripes that lose all 4 chunks is ~5.9e-4 (drives the 3.1 TB
        // R_HYB number).
        let p = prob_cover_all(120, 20, 4);
        assert!((p - 5.899e-4).abs() / 5.899e-4 < 0.01, "p={p}");
    }

    #[test]
    fn hypergeom_sums_to_one() {
        let (d, w, f) = (120, 20, 4);
        let total: f64 = (0..=f).map(|m| hypergeom_pmf(d, w, f, m)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
        // And the top bucket agrees with prob_cover_all.
        assert!((hypergeom_pmf(d, w, f, f) - prob_cover_all(d, w, f)).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_exact_small_and_stirling_large() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - (120.0f64).ln()).abs() < 1e-12);
        // Stirling region vs exact summation.
        let exact: f64 = (2..=100u32).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(100) - exact).abs() < 1e-9);
    }

    #[test]
    fn ln_choose_known_values() {
        assert!((ln_choose(5, 2) - (10.0f64).ln()).abs() < 1e-12);
        assert!((ln_choose(120, 20) - 51.7374).abs() < 0.001); // ln C(120,20)
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn census_failure_updates_match_hypergeometric() {
        // After f sequential failures, the census must equal the static
        // hypergeometric distribution over f failed disks.
        let (d, w) = (120u32, 20u32);
        let s = 1e6;
        let mut census = StripeCensus::new(d, w, s);
        for f in 1..=4u32 {
            census.add_disk_failure();
            for m in 0..=f {
                let expect = s * hypergeom_pmf(d, w, f, m);
                let got = census.at(m);
                assert!(
                    (got - expect).abs() / expect.max(1e-9) < 1e-9,
                    "f={f} m={m} got={got} expect={expect}"
                );
            }
        }
        assert_eq!(census.failed_disks(), 4);
    }

    #[test]
    fn census_conserves_stripes() {
        let mut census = StripeCensus::new(60, 10, 5e5);
        for _ in 0..5 {
            census.add_disk_failure();
            assert!((census.total_stripes() - 5e5).abs() < 1.0);
        }
        census.drain_priority(1e4);
        assert!((census.total_stripes() - 5e5).abs() < 1.0);
    }

    #[test]
    fn priority_drain_clears_top_class_first() {
        let mut census = StripeCensus::new(120, 20, 1e6);
        for _ in 0..3 {
            census.add_disk_failure();
        }
        let top = census.at(3);
        assert!(top > 0.0);
        // Budget exactly the top class.
        census.drain_priority(top * 3.0);
        assert!(census.at(3) < 1e-9, "top class should be cleared");
        assert!(census.at(2) > 0.0, "lower class untouched");
    }

    #[test]
    fn full_drain_resets_pool() {
        let mut census = StripeCensus::new(120, 20, 1e6);
        census.add_disk_failure();
        census.add_disk_failure();
        let chunks = census.failed_chunks();
        assert!(chunks > 0.0);
        let repaired = census.drain_priority(chunks + 1.0);
        assert!((repaired - chunks).abs() < 1e-6);
        assert_eq!(census.failed_disks(), 0);
        assert!((census.at(0) - 1e6).abs() < 1e-6);
    }

    #[test]
    fn consume_drain_releases_head_exactly_equal_to_repaired() {
        // Epsilon boundary: a head entry exactly equal to the repaired
        // budget is covered (<= repaired + 1e-9) and its disk released.
        let mut census = StripeCensus::new(120, 20, 1e6);
        census.add_disk_failure();
        census.add_disk_failure();
        let mut pending: std::collections::VecDeque<f64> = [100.0, 50.0].into_iter().collect();
        census.consume_drain(&mut pending, 100.0);
        assert_eq!(census.failed_disks(), 1, "exact head released");
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0], 50.0, "second entry untouched");
    }

    #[test]
    fn consume_drain_releases_zero_volume_head_for_free() {
        // A zero-volume head entry (a failure that added no outstanding
        // chunks) is released by any positive budget without consuming it.
        let mut census = StripeCensus::new(120, 20, 1e6);
        census.add_disk_failure();
        census.add_disk_failure();
        let mut pending: std::collections::VecDeque<f64> = [0.0, 30.0].into_iter().collect();
        census.consume_drain(&mut pending, 30.0);
        assert_eq!(
            census.failed_disks(),
            0,
            "both released: 0.0 free, 30.0 exact"
        );
        assert!(pending.is_empty());
    }

    #[test]
    fn consume_drain_zero_budget_is_a_noop_even_with_zero_volume_head() {
        // `repaired == 0.0` never enters the loop (`while repaired > 0.0`),
        // so even a zero-volume head stays queued — the original simulators
        // only release on actual drain progress.
        let mut census = StripeCensus::new(120, 20, 1e6);
        census.add_disk_failure();
        let mut pending: std::collections::VecDeque<f64> = [0.0].into_iter().collect();
        census.consume_drain(&mut pending, 0.0);
        assert_eq!(census.failed_disks(), 1);
        assert_eq!(pending.len(), 1);
    }

    #[test]
    fn consume_drain_within_epsilon_and_partial_head() {
        let mut census = StripeCensus::new(120, 20, 1e6);
        census.add_disk_failure();
        census.add_disk_failure();
        // Head within 1e-9 of the budget: covered. Second head larger than
        // the leftover: reduced in place, walk stops.
        let mut pending: std::collections::VecDeque<f64> =
            [100.0 + 5e-10, 40.0].into_iter().collect();
        census.consume_drain(&mut pending, 100.0);
        assert_eq!(census.failed_disks(), 1, "head within epsilon released");
        assert_eq!(pending.len(), 1);
        // The leftover budget went slightly negative (-5e-10), so the
        // second entry is untouched.
        assert_eq!(pending[0], 40.0);
    }

    #[test]
    fn drain_hours_accounting() {
        let mut census = StripeCensus::new(120, 20, 1e6);
        census.add_disk_failure();
        census.add_disk_failure();
        let h = census.drain_hours_at_or_above(2, 1000.0);
        assert!((h - census.at(2) * 2.0 / 1000.0).abs() < 1e-9);
        assert_eq!(census.drain_hours_at_or_above(2, 0.0), f64::INFINITY);
    }
}
