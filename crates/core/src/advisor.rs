//! Configuration advisor: the paper's §6.1 takeaways, encoded as a
//! decision procedure over quantified tradeoffs rather than prose.
//!
//! Given an operator's constraints — expected correlated-burst frequency,
//! durability target, whether the enclosures are black-box RBODs, and
//! performance sensitivity — recommend an EC family, MLEC scheme, and
//! repair method, with the measured justification attached.

use crate::MlecSystem;
use mlec_sim::repair::RepairMethod;
use mlec_topology::MlecScheme;

/// How often the site observes correlated failure bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstExposure {
    /// Bursts are rare (well-conditioned power/cooling, small blast radius).
    Rare,
    /// Bursts happen regularly (shared power domains, batch-correlated
    /// drives).
    Frequent,
}

/// Operational capability of the storage team.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpsModel {
    /// Off-the-shelf RBODs; the network level cannot see inside enclosures.
    BlackBoxRbod,
    /// Full cross-level transparency: enclosures report failed chunks.
    Transparent,
}

/// What the deployment optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Maximize durability (paper takeaway 6: HPC datasets where any lost
    /// chunk poisons petabytes).
    Durability,
    /// Favor throughput/simplicity at acceptable durability (takeaway 5).
    Performance,
}

/// The advisor's inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteProfile {
    /// Burst regime at the site.
    pub bursts: BurstExposure,
    /// Cross-level transparency available?
    pub ops: OpsModel,
    /// Optimization target.
    pub priority: Priority,
    /// Minimum acceptable one-year durability in nines.
    pub min_nines: f64,
}

/// A recommendation with its quantified rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Recommended placement scheme.
    pub scheme: MlecScheme,
    /// Recommended repair method.
    pub method: RepairMethod,
    /// Predicted one-year durability, nines.
    pub durability_nines: f64,
    /// Predicted cross-rack traffic per catastrophic-pool repair, TB.
    pub repair_traffic_tb: f64,
    /// Human-readable rationale (one line per §6.1 rule applied).
    pub rationale: Vec<String>,
}

/// Recommend a scheme and repair method for the paper's reference geometry.
///
/// Returns `None` when no configuration meets `min_nines` under the given
/// constraints (the caller should then revisit code parameters rather than
/// placement).
pub fn recommend(profile: &SiteProfile) -> Option<Recommendation> {
    let mut rationale = Vec::new();

    // §6.1 rules 1-2: the repair method follows the ops model.
    let method = match profile.ops {
        OpsModel::BlackBoxRbod => {
            rationale.push(
                "black-box RBODs cannot report failed chunks: R_ALL is the only \
                 implementable repair (takeaway 1)"
                    .to_string(),
            );
            RepairMethod::All
        }
        OpsModel::Transparent => {
            rationale.push(
                "cross-level transparency unlocks the optimized repairs: use R_MIN \
                 (takeaway 2)"
                    .to_string(),
            );
            RepairMethod::Min
        }
    };

    // §6.1 rules 3-4: the scheme follows the burst regime.
    let candidates: Vec<MlecScheme> = match profile.bursts {
        BurstExposure::Frequent => {
            rationale.push(
                "frequent correlated bursts: C/C gives the best burst tolerance \
                 (takeaway 3, Fig 5)"
                    .to_string(),
            );
            vec![MlecScheme::CC]
        }
        BurstExposure::Rare => {
            rationale.push(
                "bursts are rare: C/D or D/D maximize durability under independent \
                 failures (takeaway 4, Fig 10)"
                    .to_string(),
            );
            vec![MlecScheme::CD, MlecScheme::DD]
        }
    };

    // Rank candidates by durability; performance priority prefers the
    // scheme with faster single-disk repair when within a nine.
    let mut best: Option<Recommendation> = None;
    for scheme in candidates {
        let system = MlecSystem::paper_default(scheme);
        let nines = system.durability_nines(method);
        let plan = system.plan_catastrophic_repair(method);
        let rec = Recommendation {
            scheme,
            method,
            durability_nines: nines,
            repair_traffic_tb: plan.cross_rack_traffic_tb,
            rationale: rationale.clone(),
        };
        best = match best {
            None => Some(rec),
            Some(prev) => {
                let better = match profile.priority {
                    Priority::Durability => nines > prev.durability_nines,
                    Priority::Performance => {
                        plan.cross_rack_traffic_tb < prev.repair_traffic_tb
                            && nines > prev.durability_nines - 1.0
                    }
                };
                Some(if better { rec } else { prev })
            }
        };
    }
    let mut rec = best?;
    if rec.durability_nines < profile.min_nines {
        return None;
    }
    if profile.priority == Priority::Performance {
        rec.rationale.push(
            "performance priority: ties broken toward less repair traffic (takeaway 5)".to_string(),
        );
    } else {
        rec.rationale
            .push("durability priority: ties broken toward more nines (takeaway 6)".to_string());
    }
    Some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_site_gets_cc() {
        let rec = recommend(&SiteProfile {
            bursts: BurstExposure::Frequent,
            ops: OpsModel::Transparent,
            priority: Priority::Durability,
            min_nines: 10.0,
        })
        .unwrap();
        assert_eq!(rec.scheme, MlecScheme::CC);
        assert_eq!(rec.method, RepairMethod::Min);
    }

    #[test]
    fn quiet_site_gets_local_declustered() {
        let rec = recommend(&SiteProfile {
            bursts: BurstExposure::Rare,
            ops: OpsModel::Transparent,
            priority: Priority::Durability,
            min_nines: 10.0,
        })
        .unwrap();
        assert!(matches!(rec.scheme, MlecScheme { .. }));
        assert_eq!(rec.scheme.local, mlec_topology::Placement::Declustered);
    }

    #[test]
    fn black_box_rbods_forced_to_rall() {
        let rec = recommend(&SiteProfile {
            bursts: BurstExposure::Rare,
            ops: OpsModel::BlackBoxRbod,
            priority: Priority::Durability,
            min_nines: 5.0,
        })
        .unwrap();
        assert_eq!(rec.method, RepairMethod::All);
        assert!(rec.rationale.iter().any(|r| r.contains("R_ALL")));
    }

    #[test]
    fn unreachable_target_returns_none() {
        let rec = recommend(&SiteProfile {
            bursts: BurstExposure::Frequent,
            ops: OpsModel::BlackBoxRbod,
            priority: Priority::Durability,
            min_nines: 70.0,
        });
        assert!(rec.is_none());
    }

    #[test]
    fn transparency_buys_nines() {
        let base = SiteProfile {
            bursts: BurstExposure::Rare,
            ops: OpsModel::BlackBoxRbod,
            priority: Priority::Durability,
            min_nines: 5.0,
        };
        let black = recommend(&base).unwrap();
        let clear = recommend(&SiteProfile {
            ops: OpsModel::Transparent,
            ..base
        })
        .unwrap();
        assert!(clear.durability_nines > black.durability_nines + 1.0);
    }
}
