//! `mlec-core`: the public facade of the MLEC analysis suite.
//!
//! Downstream users get one crate that re-exports the full stack and exposes
//! [`experiments`] — a runner per table/figure of the paper — plus the
//! [`MlecSystem`] convenience type for interactive exploration (see the
//! workspace `examples/`).
//!
//! ```
//! use mlec_core::MlecSystem;
//! use mlec_core::topology::MlecScheme;
//! use mlec_core::sim::RepairMethod;
//!
//! let system = MlecSystem::paper_default(MlecScheme::CD);
//! let plan = system.plan_catastrophic_repair(RepairMethod::Hyb);
//! assert!(plan.cross_rack_traffic_tb < 5.0); // the paper's 3.1 TB
//! ```

pub mod advisor;
pub mod experiments;
pub mod figdata;
pub mod figures;
pub mod registry;
pub mod report;

pub use mlec_analysis as analysis;
pub use mlec_ec as ec;
pub use mlec_gf as gf;
pub use mlec_sim as sim;
pub use mlec_topology as topology;
pub use mlec_units as units;

use mlec_analysis::splitting;
use mlec_ec::MlecParams;
use mlec_sim::config::MlecDeployment;
use mlec_sim::repair::{plan_catastrophic_repair, CatastrophicRepairPlan, RepairMethod};
use mlec_sim::SimConfig;
use mlec_topology::{Geometry, MlecScheme};

/// A configured MLEC system: the one-stop entry point of the public API.
#[derive(Debug, Clone, Copy)]
pub struct MlecSystem {
    deployment: MlecDeployment,
}

impl MlecSystem {
    /// The paper's §3 reference system with the chosen placement scheme.
    pub fn paper_default(scheme: MlecScheme) -> MlecSystem {
        MlecSystem {
            deployment: MlecDeployment::paper_default(scheme),
        }
    }

    /// A fully custom system.
    pub fn new(
        geometry: Geometry,
        params: MlecParams,
        scheme: MlecScheme,
        config: SimConfig,
    ) -> MlecSystem {
        MlecSystem {
            deployment: MlecDeployment {
                geometry,
                params,
                scheme,
                config,
            },
        }
    }

    /// The underlying deployment description.
    pub fn deployment(&self) -> &MlecDeployment {
        &self.deployment
    }

    /// Available repair bandwidth for a single disk failure (Table 2).
    pub fn single_disk_repair_bw_mbs(&self) -> f64 {
        mlec_sim::bandwidth::single_disk_repair_bw(&self.deployment).to_mbs()
    }

    /// Available repair bandwidth for a catastrophic pool (Table 2).
    pub fn catastrophic_pool_repair_bw_mbs(&self) -> f64 {
        mlec_sim::bandwidth::catastrophic_pool_repair_bw(&self.deployment).to_mbs()
    }

    /// Time to repair a single failed disk, hours (Fig 6a).
    pub fn single_disk_repair_hours(&self) -> f64 {
        mlec_sim::bandwidth::single_disk_repair_time(&self.deployment).to_hours()
    }

    /// Traffic/time plan for repairing a catastrophic pool (Fig 8, Fig 9).
    pub fn plan_catastrophic_repair(&self, method: RepairMethod) -> CatastrophicRepairPlan {
        plan_catastrophic_repair(&self.deployment, method)
    }

    /// Catastrophic local-pool probability per system-year (Fig 7).
    pub fn catastrophic_probability_per_year(&self) -> f64 {
        mlec_analysis::chains::system_catastrophic_rate(&self.deployment).to_per_year()
    }

    /// One-year durability in nines under a repair method (Fig 10).
    pub fn durability_nines(&self, method: RepairMethod) -> f64 {
        splitting::mlec_durability_nines(&self.deployment, method)
    }

    /// PDL under a correlated burst of `failures` disks across
    /// `affected_racks` racks (Fig 5 cell).
    pub fn burst_pdl(&self, failures: u32, affected_racks: u32, samples: u32, seed: u64) -> f64 {
        mlec_analysis::burst::mlec_burst_pdl(
            &self.deployment,
            failures,
            affected_racks,
            samples,
            seed,
        )
    }

    /// Yearly cross-rack repair traffic under a method (§5.1.4).
    pub fn yearly_repair_traffic_tb(&self, method: RepairMethod) -> f64 {
        mlec_sim::traffic::mlec_yearly_traffic(
            &self.deployment,
            method,
            mlec_analysis::chains::system_catastrophic_rate(&self.deployment),
        )
        .to_tb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_exposes_paper_numbers() {
        let cc = MlecSystem::paper_default(MlecScheme::CC);
        assert!((cc.single_disk_repair_bw_mbs() - 40.0).abs() < 0.5);
        assert!((cc.catastrophic_pool_repair_bw_mbs() - 250.0).abs() < 0.5);
        let plan = cc.plan_catastrophic_repair(RepairMethod::All);
        assert!((plan.cross_rack_traffic_tb - 4400.0).abs() < 1.0);
    }

    #[test]
    fn custom_system_construction() {
        let system = MlecSystem::new(
            Geometry::small_test(),
            MlecParams::new(2, 1, 3, 1),
            MlecScheme::CC,
            SimConfig::paper_default(),
        );
        assert!(system.single_disk_repair_bw_mbs() > 0.0);
    }

    #[test]
    fn durability_ordering_via_facade() {
        let system = MlecSystem::paper_default(MlecScheme::CD);
        assert!(
            system.durability_nines(RepairMethod::Min)
                >= system.durability_nines(RepairMethod::All)
        );
    }
}
