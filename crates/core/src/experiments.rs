//! One runner per paper table/figure. Each returns a result the
//! `mlec-bench` binaries print (and dump as JSON under `target/figures/`),
//! and that EXPERIMENTS.md's paper-vs-measured records come from.
//!
//! Every Monte Carlo surface here executes through `mlec-runner`: a heatmap
//! is one deterministic [`GridTrial`] run per scheme (trial index → grid
//! cell, per-trial seeds from the run's seed stream), so cell estimates are
//! bit-identical across thread counts and can checkpoint/resume via JSONL
//! manifests.

use mlec_analysis::burst::{
    lrc_burst_sample, lrc_undecodable_by_count, mlec_burst_sample, slec_burst_sample,
};
use mlec_analysis::chains::system_catastrophic_rate;
use mlec_analysis::splitting::mlec_durability_nines;
use mlec_analysis::tradeoff::{
    enumerate_lrc, enumerate_mlec, enumerate_slec, ideal_lrc_undecodable_at_limit, TradeoffPoint,
    OVERHEAD_BAND,
};
use mlec_ec::throughput::{measure_slec_mt, ThroughputModel};
use mlec_ec::{Lrc, LrcParams, SlecParams};
use mlec_runner::{run_with, trial_rng, GridOrder, GridTrial, HitTrial, Json, RunSpec, StopRule};
use mlec_sim::bandwidth::{
    catastrophic_pool_repair_bw, catastrophic_pool_repair_time, repair_sizes,
    single_disk_repair_bw, single_disk_repair_time,
};
use mlec_sim::config::MlecDeployment;
use mlec_sim::importance::FailureBias;
use mlec_sim::repair::{plan_catastrophic_repair, RepairMethod};
use mlec_sim::traffic;
use mlec_sim::SimConfig;
use mlec_topology::{Geometry, MlecScheme, SlecPlacement};
use std::path::PathBuf;

fn paper_deployment(scheme: MlecScheme) -> MlecDeployment {
    MlecDeployment::paper_default(scheme)
}

/// A PDL heatmap: `pdl[yi][xi]` for failures `ys[yi]` over racks `xs[xi]`.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Series/scheme label.
    pub label: String,
    /// X axis: affected racks.
    pub xs: Vec<u32>,
    /// Y axis: failed disks.
    pub ys: Vec<u32>,
    /// `pdl[yi][xi]`; cells with `y < x` are impossible and set to NaN.
    pub pdl: Vec<Vec<f64>>,
    /// Conditional-MC trials actually executed (less than the full budget
    /// when an adaptive precision target fired).
    pub trials: u64,
}

/// Grid resolution of a heatmap run.
#[derive(Debug, Clone, Copy)]
pub struct HeatmapSpec {
    /// Maximum failures / racks (the paper uses 60).
    pub max: u32,
    /// Step between grid lines (e.g. 6 gives a 10x10 grid).
    pub step: u32,
    /// Conditional-MC samples per cell (an upper bound when `rel_err` is
    /// set).
    pub samples: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Adaptive precision target: stop when the pooled grid estimate
    /// reaches this relative standard error ([`StopRule::until_rel_err`]).
    /// Cells are then sampled interleaved (one sweep of the grid per pass)
    /// so every cell keeps an equal share of the spent budget. `None` runs
    /// the fixed per-cell budget in blocked order.
    pub rel_err: Option<f64>,
    /// Minimum samples per cell before an adaptive stop may fire.
    pub min_samples: u32,
}

impl Default for HeatmapSpec {
    fn default() -> HeatmapSpec {
        HeatmapSpec {
            max: 60,
            step: 6,
            samples: 60,
            seed: 42,
            rel_err: None,
            min_samples: 8,
        }
    }
}

impl HeatmapSpec {
    /// Grid lines: always dense over 1..=6 (the paper's PDL structure pivots
    /// at `x = p_n + 1` racks), then stepped up to `max`.
    fn axis(&self) -> Vec<u32> {
        let mut v: Vec<u32> = (1..=6.min(self.max)).collect();
        let mut x = 6 + self.step;
        while x < self.max {
            v.push(x);
            x += self.step;
        }
        if *v.last().unwrap() != self.max {
            v.push(self.max);
        }
        v
    }
}

/// Execution options for runner-driven heatmaps: worker threads and
/// (optionally) a directory for per-map JSONL manifests so an interrupted
/// sweep resumes where it stopped.
#[derive(Debug, Clone, Default)]
pub struct HeatmapRunOpts {
    /// Worker threads; 0 = available parallelism.
    pub threads: usize,
    /// Directory for run manifests; `None` disables checkpointing.
    pub manifest_dir: Option<PathBuf>,
    /// Path for a per-trial JSONL event log (`trace=` knob on the sim
    /// figures); `None` disables event logging. Logging never perturbs the
    /// simulation — results are bit-identical either way.
    pub event_log: Option<PathBuf>,
}

impl HeatmapRunOpts {
    fn manifest_path(&self, run_label: &str) -> Option<PathBuf> {
        let dir = self.manifest_dir.as_ref()?;
        Some(dir.join(format!("{}.jsonl", run_label.replace('/', "-"))))
    }

    /// Open the configured event-log sink, if any.
    fn event_log_sink(&self) -> std::io::Result<Option<mlec_sim::trials::EventLogSink>> {
        match &self.event_log {
            Some(path) => Ok(Some(mlec_sim::trials::EventLogSink::to_file(path)?)),
            None => Ok(None),
        }
    }
}

/// One heatmap as one deterministic runner campaign: feasible `(y, x)`
/// cells are flattened in row-major order, trial `i` draws one
/// conditional-MC sample of cell `i / samples`, and the per-cell Welford
/// means become the PDL matrix (`y < x` cells stay NaN: impossible burst).
fn run_heatmap(
    display_label: String,
    run_label: &str,
    spec: &HeatmapSpec,
    opts: &HeatmapRunOpts,
    config_hash: u64,
    sample: impl Fn(u32, u32, &mut mlec_runner::TrialRng) -> f64 + Sync,
) -> Heatmap {
    let xs = spec.axis();
    let ys = spec.axis();
    let cells: Vec<(u32, u32)> = ys
        .iter()
        .flat_map(|&y| xs.iter().filter(move |&&x| y >= x).map(move |&x| (y, x)))
        .collect();

    let trial = GridTrial {
        cells: cells.len(),
        samples_per_cell: spec.samples as u64,
        order: match spec.rel_err {
            Some(_) => GridOrder::Interleaved,
            None => GridOrder::Blocked,
        },
        f: |cell: usize, seed: u64| {
            let (y, x) = cells[cell];
            let mut rng = trial_rng(seed);
            sample(y, x, &mut rng)
        },
    };
    let stop = match spec.rel_err {
        Some(rel) => StopRule::until_rel_err(
            rel,
            cells.len() as u64 * spec.min_samples.min(spec.samples) as u64,
            trial.total_trials(),
        ),
        None => StopRule::fixed(trial.total_trials()),
    };
    let mut run_spec = RunSpec::new(run_label, spec.seed, stop)
        .threads(opts.threads)
        .config_hash(config_hash);
    if let Some(path) = opts.manifest_path(run_label) {
        run_spec = run_spec.manifest(path);
    }
    let report = run_with(&trial, &run_spec, trial.empty()).expect("heatmap run");

    let mut pdl = vec![vec![f64::NAN; xs.len()]; ys.len()];
    let mut yi_of = std::collections::BTreeMap::new();
    for (yi, &y) in ys.iter().enumerate() {
        yi_of.insert(y, yi);
    }
    let mut xi_of = std::collections::BTreeMap::new();
    for (xi, &x) in xs.iter().enumerate() {
        xi_of.insert(x, xi);
    }
    for (cell, &(y, x)) in cells.iter().enumerate() {
        pdl[yi_of[&y]][xi_of[&x]] = report.acc.cell(cell).mean();
    }
    Heatmap {
        label: display_label,
        xs,
        ys,
        pdl,
        trials: report.trials,
    }
}

fn heatmap_config_hash(spec: &HeatmapSpec, extra: &str) -> u64 {
    let mut fields = vec![
        ("max", Json::U64(spec.max as u64)),
        ("step", Json::U64(spec.step as u64)),
    ];
    match spec.rel_err {
        // Fixed budget: `samples` is run identity (blocked order maps
        // trial index -> cell through it).
        None => fields.push(("samples", Json::U64(spec.samples as u64))),
        // Adaptive: the budget is a stop rule, not identity (a resumed run
        // may extend it), but the interleaved index -> cell mapping is.
        Some(_) => fields.push(("order", Json::Str("interleaved".to_string()))),
    }
    fields.push(("extra", Json::Str(extra.to_string())));
    Json::obj(fields).fingerprint()
}

/// Fig 5: PDL heatmaps of the four MLEC schemes under correlated bursts.
pub fn fig5_mlec_burst(spec: &HeatmapSpec) -> Vec<Heatmap> {
    fig5_mlec_burst_with(spec, &HeatmapRunOpts::default())
}

/// [`fig5_mlec_burst`] with explicit runner options (threads, manifests).
pub fn fig5_mlec_burst_with(spec: &HeatmapSpec, opts: &HeatmapRunOpts) -> Vec<Heatmap> {
    MlecScheme::ALL
        .into_iter()
        .map(|scheme| {
            let dep = paper_deployment(scheme);
            let run_label = format!("fig05/{}", scheme.name().replace('/', ""));
            run_heatmap(
                scheme.name(),
                &run_label,
                spec,
                opts,
                heatmap_config_hash(spec, &scheme.name()),
                |y, x, rng| mlec_burst_sample(&dep, y, x, rng),
            )
        })
        .collect()
}

/// One row of Table 2 / Fig 6.
#[derive(Debug, Clone)]
pub struct RepairBandwidthRow {
    /// Scheme label.
    pub scheme: String,
    /// Single-disk repair size, TB.
    pub disk_size_tb: f64,
    /// Single-disk available repair bandwidth, MB/s.
    pub disk_bw_mbs: f64,
    /// Catastrophic-pool repair size, TB.
    pub pool_size_tb: f64,
    /// Catastrophic-pool available repair bandwidth, MB/s.
    pub pool_bw_mbs: f64,
    /// Fig 6a: single-disk repair time, hours.
    pub disk_repair_hours: f64,
    /// Fig 6b: catastrophic-pool repair time (`R_ALL`), hours.
    pub pool_repair_hours: f64,
}

/// Table 2 + Fig 6: repair sizes, bandwidths, and times per scheme.
pub fn table2_and_fig6() -> Vec<RepairBandwidthRow> {
    MlecScheme::ALL
        .into_iter()
        .map(|scheme| {
            let dep = paper_deployment(scheme);
            let (disk, pool) = repair_sizes(&dep);
            let (disk_tb, pool_tb) = (disk.to_tb(), pool.to_tb());
            RepairBandwidthRow {
                scheme: scheme.name(),
                disk_size_tb: disk_tb,
                disk_bw_mbs: single_disk_repair_bw(&dep).to_mbs(),
                pool_size_tb: pool_tb,
                pool_bw_mbs: catastrophic_pool_repair_bw(&dep).to_mbs(),
                disk_repair_hours: single_disk_repair_time(&dep).to_hours(),
                pool_repair_hours: catastrophic_pool_repair_time(&dep).to_hours(),
            }
        })
        .collect()
}

/// Fig 7: probability of a catastrophic local failure per system-year.
#[derive(Debug, Clone)]
pub struct CatastrophicProbRow {
    /// Scheme label.
    pub scheme: String,
    /// Catastrophic local-pool probability per system-year.
    pub prob_per_year: f64,
}

/// Fig 7 runner.
pub fn fig7_catastrophic_prob() -> Vec<CatastrophicProbRow> {
    MlecScheme::ALL
        .into_iter()
        .map(|scheme| CatastrophicProbRow {
            scheme: scheme.name(),
            prob_per_year: system_catastrophic_rate(&paper_deployment(scheme)).to_per_year(),
        })
        .collect()
}

/// One simulated Fig 7 row: the catastrophic-pool rate measured by a
/// runner-driven pool-simulation campaign, with its compound-Poisson 95%
/// interval (plain Poisson under unbiased simulation).
#[derive(Debug, Clone)]
pub struct CatastrophicSimRow {
    /// Scheme label.
    pub scheme: String,
    /// Simulated (weighted) catastrophic events per pool-year; the Poisson
    /// 95% upper bound when `unobserved` is set.
    pub rate_per_pool_year: f64,
    /// 95% interval on the rate (compound-Poisson statistics).
    pub rate_ci_low: f64,
    pub rate_ci_high: f64,
    /// Catastrophic probability per system-year implied by the rate.
    pub prob_per_system_year: f64,
    /// Analytic (Markov-chain) counterpart at the same AFR, for comparison.
    pub analytic_prob_per_system_year: f64,
    /// Catastrophic events observed (raw count).
    pub events: u64,
    /// Likelihood-weighted event total (equals `events` when unbiased).
    pub weighted_events: f64,
    /// Effective sample size of the weighted events.
    pub ess: f64,
    /// Mean likelihood weight per excursion (≈1 when correctly weighted).
    pub mean_weight: f64,
    /// Importance-sampling multiplier applied while the pool was degraded.
    pub bias: f64,
    /// Pool-years simulated.
    pub pool_years: f64,
    /// Fraction of simulated time the pool spent degraded (≥1 disk failed).
    pub degraded_frac: f64,
    /// True when zero events were observed and the rate is an upper bound.
    pub unobserved: bool,
}

/// Resolve the `bias=` knob for a scheme: `None` picks
/// [`FailureBias::auto`] for the deployment/model, `Some(1.0)` forces
/// direct simulation, any other multiplier biases the degraded state.
fn resolve_bias(
    bias: Option<f64>,
    dep: &MlecDeployment,
    model: &mlec_sim::failure::FailureModel,
) -> FailureBias {
    match bias {
        None => FailureBias::auto(dep, model),
        Some(1.0) => FailureBias::NONE,
        Some(b) => FailureBias::degraded_only(b),
    }
}

/// Fig 7 `mode=sim`: measure each scheme's catastrophic-pool rate by
/// pool simulation through `mlec-runner`. With importance sampling
/// (`bias = None` for auto, or an explicit degraded-state multiplier) this
/// works at the paper's true 1% AFR; both columns use the same AFR, so the
/// sim-vs-analytic comparison stays valid.
pub fn fig7_catastrophic_prob_sim(
    afr: f64,
    years_per_trial: f64,
    trials: u64,
    seed: u64,
    bias: Option<f64>,
    opts: &HeatmapRunOpts,
) -> std::io::Result<Vec<CatastrophicSimRow>> {
    let mut out = Vec::new();
    let sink = opts.event_log_sink()?;
    for scheme in MlecScheme::ALL {
        let mut dep = paper_deployment(scheme);
        dep.config.afr = afr;
        let model = mlec_sim::failure::FailureModel::Exponential { afr };
        let fb = resolve_bias(bias, &dep, &model);
        // The trial budget is a stop rule, not run identity: trial seeds
        // depend only on (root seed, label, index), so extending `trials`
        // must resume an existing manifest rather than refuse it. The
        // resolved bias multiplier IS run identity (it changes every trial
        // result), so it goes into the hash — per scheme, because auto
        // bias differs across schemes.
        let config_hash = Json::obj(vec![
            ("afr", Json::F64(afr)),
            ("years_per_trial", Json::F64(years_per_trial)),
            ("bias_degraded", Json::F64(fb.degraded)),
        ])
        .fingerprint();
        let run_label = format!("fig07/{}", scheme.name().replace('/', ""));
        let mut spec = RunSpec::new(&run_label, seed, StopRule::fixed(trials))
            .threads(opts.threads)
            .config_hash(config_hash);
        if let Some(path) = opts.manifest_path(&run_label) {
            spec = spec.manifest(path);
        }
        let (s1, report) = mlec_analysis::splitting::stage1_via_runner_logged(
            &dep,
            &model,
            years_per_trial,
            fb,
            &spec,
            sink.as_ref(),
        )?;
        let pools = dep.local_pools().num_pools() as f64;
        let summary = report.summary;
        out.push(CatastrophicSimRow {
            scheme: scheme.name(),
            rate_per_pool_year: s1.cat_rate_per_pool_year,
            rate_ci_low: summary.ci_low,
            rate_ci_high: summary.ci_high,
            prob_per_system_year: -(-s1.cat_rate_per_pool_year * pools).exp_m1(),
            analytic_prob_per_system_year: -(-system_catastrophic_rate(&dep).to_per_year())
                .exp_m1(),
            events: report.acc.events(),
            weighted_events: report.acc.rate.weighted_events(),
            ess: report.acc.rate.ess(),
            mean_weight: report.acc.mean_excursion_weight(),
            bias: fb.degraded,
            pool_years: report.acc.pool_years(),
            degraded_frac: report.acc.degraded_fraction(),
            unobserved: s1.unobserved,
        });
    }
    Ok(out)
}

/// One (scheme, method) cell of Fig 8 / Fig 9.
#[derive(Debug, Clone)]
pub struct RepairMethodCell {
    /// Scheme label.
    pub scheme: String,
    /// Method label.
    pub method: String,
    /// Fig 8: cross-rack traffic, TB.
    pub cross_rack_tb: f64,
    /// Fig 9 solid bar: network repair time, hours.
    pub network_time_h: f64,
    /// Fig 9 striped bar: local repair time, hours.
    pub local_time_h: f64,
}

/// Fig 8 + Fig 9: repair traffic and times for the paper's methods ×
/// schemes (the exact paper reproduction).
pub fn fig8_fig9_repair_methods() -> Vec<RepairMethodCell> {
    fig8_fig9_repair_methods_for(&RepairMethod::PAPER)
}

/// [`fig8_fig9_repair_methods`] for an explicit method list (the `method=`
/// registry parameter; includes the beyond-the-paper strategies).
pub fn fig8_fig9_repair_methods_for(methods: &[RepairMethod]) -> Vec<RepairMethodCell> {
    let mut out = Vec::new();
    for scheme in MlecScheme::ALL {
        let dep = paper_deployment(scheme);
        for &method in methods {
            let plan = plan_catastrophic_repair(&dep, method);
            out.push(RepairMethodCell {
                scheme: scheme.name(),
                method: method.name().to_string(),
                cross_rack_tb: plan.cross_rack_traffic_tb,
                network_time_h: plan.network_time_h,
                local_time_h: plan.local_time_h,
            });
        }
    }
    out
}

/// One (scheme, method) cell of Fig 8 / Fig 9 `mode=sim`: the analytic
/// repair plan next to per-catastrophic-pool traffic and sojourn measured
/// by whole-system simulation at an inflated AFR.
#[derive(Debug, Clone)]
pub struct RepairMethodSimCell {
    /// Scheme label.
    pub scheme: String,
    /// Method label.
    pub method: String,
    /// Analytic plan: cross-rack traffic per catastrophic pool, TB.
    pub plan_cross_rack_tb: f64,
    /// Analytic plan: network repair time per catastrophic pool, hours.
    pub plan_network_time_h: f64,
    /// Measured: mean cross-rack traffic per catastrophic pool, TB.
    pub sim_cross_rack_tb: f64,
    /// Measured: mean network-repair sojourn per catastrophic pool, hours.
    pub sim_network_time_h: f64,
    /// Catastrophic pools observed across all missions.
    pub catastrophic_pools: u64,
    /// Missions simulated.
    pub missions: u64,
}

/// Fig 8 + Fig 9 `mode=sim`: measure per-catastrophic-pool repair traffic
/// and sojourn by running whole-system missions through `mlec-runner` (one
/// campaign per scheme × method, at an AFR inflated enough to observe
/// catastrophic pools directly). The analytic plan of
/// [`fig8_fig9_repair_methods`] sits beside the measurement; they must
/// agree because the simulator charges repairs from the same plan — the
/// sim columns confirm the event accounting, catastrophe frequencies and
/// determinism of the pipeline, not an independent physical model.
pub fn fig8_fig9_repair_methods_sim(
    afr: f64,
    years_per_trial: f64,
    trials: u64,
    seed: u64,
    methods: &[RepairMethod],
    opts: &HeatmapRunOpts,
) -> std::io::Result<Vec<RepairMethodSimCell>> {
    let mut out = Vec::new();
    for scheme in MlecScheme::ALL {
        let mut dep = paper_deployment(scheme);
        dep.config.afr = afr;
        let model = mlec_sim::failure::FailureModel::Exponential { afr };
        for &method in methods {
            let plan = plan_catastrophic_repair(&dep, method);
            let trial = mlec_sim::trials::SystemTrial {
                dep: &dep,
                model: &model,
                strategy: method.strategy(),
                years: years_per_trial,
                opts: mlec_sim::system_sim::SystemSimOptions::default(),
                event_log: None,
                log_label: "",
            };
            // Trial budget excluded (a resumed run may extend it), the
            // physics included — see fig7_catastrophic_prob_sim.
            let config_hash = Json::obj(vec![
                ("afr", Json::F64(afr)),
                ("years_per_trial", Json::F64(years_per_trial)),
                ("method", Json::Str(method.name().to_string())),
            ])
            .fingerprint();
            let run_label = format!("fig08/{}-{}", scheme.name().replace('/', ""), method.name());
            let mut spec = RunSpec::new(&run_label, seed, StopRule::fixed(trials))
                .threads(opts.threads)
                .config_hash(config_hash);
            if let Some(path) = opts.manifest_path(&run_label) {
                spec = spec.manifest(path);
            }
            let report = mlec_runner::run(&trial, &spec)?;
            let acc = &report.acc;
            let cat = acc.catastrophic_pools;
            let missions = report.trials;
            let total_traffic = acc.cross_rack_traffic_tb.mean() * missions as f64;
            let total_sojourn = acc.total_sojourn_h.mean() * missions as f64;
            out.push(RepairMethodSimCell {
                scheme: scheme.name(),
                method: method.name().to_string(),
                plan_cross_rack_tb: plan.cross_rack_traffic_tb,
                plan_network_time_h: plan.network_time_h,
                sim_cross_rack_tb: if cat > 0 {
                    total_traffic / cat as f64
                } else {
                    f64::NAN
                },
                sim_network_time_h: if cat > 0 {
                    total_sojourn / cat as f64
                } else {
                    f64::NAN
                },
                catastrophic_pools: cat,
                missions,
            });
        }
    }
    Ok(out)
}

/// One (scheme, method) durability cell of Fig 10.
#[derive(Debug, Clone)]
pub struct DurabilityCell {
    /// Scheme label.
    pub scheme: String,
    /// Method label.
    pub method: String,
    /// One-year durability, nines.
    pub nines: f64,
}

/// Fig 10: durability of schemes × repair methods.
pub fn fig10_durability() -> Vec<DurabilityCell> {
    let mut out = Vec::new();
    for scheme in MlecScheme::ALL {
        let dep = paper_deployment(scheme);
        for method in RepairMethod::PAPER {
            out.push(DurabilityCell {
                scheme: scheme.name(),
                method: method.name().to_string(),
                nines: mlec_durability_nines(&dep, method),
            });
        }
    }
    out
}

/// One simulated Fig 10 cell: durability with a *simulated* stage 1
/// (pool-sim campaign through `mlec-runner`) next to the analytic one.
#[derive(Debug, Clone)]
pub struct DurabilitySimCell {
    /// Scheme label.
    pub scheme: String,
    /// Method label.
    pub method: String,
    /// One-year durability (nines) with the simulated stage-1 rate; a
    /// durability *lower bound* when `unobserved` is set.
    pub nines_sim_stage1: f64,
    /// One-year durability (nines) with the analytic stage-1 rate.
    pub nines_analytic_stage1: f64,
    /// Catastrophic events observed in stage 1 (raw count).
    pub events: u64,
    /// Likelihood-weighted event total (equals `events` when unbiased).
    pub weighted_events: f64,
    /// Effective sample size of the weighted events.
    pub ess: f64,
    /// Importance-sampling multiplier applied while the pool was degraded.
    pub bias: f64,
    /// Pool-years simulated in stage 1.
    pub pool_years: f64,
    /// Fraction of stage-1 simulated time the pool spent degraded.
    pub degraded_frac: f64,
    /// True when stage 1 observed zero events (sim nines are a lower bound
    /// from the Poisson zero-event rate bound, not ∞).
    pub unobserved: bool,
}

/// Fig 10 `mode=sim`: the splitting estimator with stage 1 *measured* by a
/// runner-driven pool-simulation campaign (one per scheme, shared across
/// repair methods) instead of the pool Markov chain. With importance
/// sampling (`bias = None` for auto) stage-1 events are observable at the
/// paper's true 1% AFR; the analytic column uses the same AFR so the two
/// stage-1 variants are directly comparable.
pub fn fig10_durability_sim(
    afr: f64,
    years_per_trial: f64,
    trials: u64,
    seed: u64,
    bias: Option<f64>,
    opts: &HeatmapRunOpts,
) -> std::io::Result<Vec<DurabilitySimCell>> {
    use mlec_analysis::splitting::{stage1_analytic, stage1_via_runner_logged, stage2_pdl};
    use mlec_units::Duration;
    let mut out = Vec::new();
    let sink = opts.event_log_sink()?;
    for scheme in MlecScheme::ALL {
        let mut dep = paper_deployment(scheme);
        dep.config.afr = afr;
        let model = mlec_sim::failure::FailureModel::Exponential { afr };
        let fb = resolve_bias(bias, &dep, &model);
        // `trials` deliberately excluded, resolved bias deliberately
        // included — see fig7_catastrophic_prob_sim.
        let config_hash = Json::obj(vec![
            ("afr", Json::F64(afr)),
            ("years_per_trial", Json::F64(years_per_trial)),
            ("bias_degraded", Json::F64(fb.degraded)),
        ])
        .fingerprint();
        let run_label = format!("fig10/{}", scheme.name().replace('/', ""));
        let mut spec = RunSpec::new(&run_label, seed, StopRule::fixed(trials))
            .threads(opts.threads)
            .config_hash(config_hash);
        if let Some(path) = opts.manifest_path(&run_label) {
            spec = spec.manifest(path);
        }
        let (s1_sim, report) =
            stage1_via_runner_logged(&dep, &model, years_per_trial, fb, &spec, sink.as_ref())?;
        let s1_analytic = stage1_analytic(&dep);
        for method in RepairMethod::PAPER {
            out.push(DurabilitySimCell {
                scheme: scheme.name(),
                method: method.name().to_string(),
                nines_sim_stage1: mlec_analysis::markov::nines(
                    stage2_pdl(&dep, method, &s1_sim, Duration::from_years(1.0)).max(1e-300),
                ),
                nines_analytic_stage1: mlec_analysis::markov::nines(
                    stage2_pdl(&dep, method, &s1_analytic, Duration::from_years(1.0)).max(1e-300),
                ),
                events: report.acc.events(),
                weighted_events: report.acc.rate.weighted_events(),
                ess: report.acc.rate.ess(),
                bias: fb.degraded,
                pool_years: report.acc.pool_years(),
                degraded_frac: report.acc.degraded_fraction(),
                unobserved: s1_sim.unobserved,
            });
        }
    }
    Ok(out)
}

/// One measured point of the Fig 11 throughput surface.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Data chunks.
    pub k: usize,
    /// Parity chunks.
    pub p: usize,
    /// Measured single-core encoding throughput, MB/s.
    pub mb_per_s: f64,
}

/// Fig 11: measure the `(k + p)` encoding-throughput surface.
/// `ks`/`ps` select the grid; `chunk_bytes` is the chunk size (the paper
/// uses 128 KB); `min_bytes` the data pushed per point; `threads` the
/// number of worker threads each stripe is split across (`<= 1` =
/// single-core, the paper's Fig 11 setup).
pub fn fig11_encoding_throughput(
    ks: &[usize],
    ps: &[usize],
    chunk_bytes: usize,
    min_bytes: usize,
    threads: usize,
) -> Vec<ThroughputCell> {
    let mut out = Vec::new();
    for &p in ps {
        for &k in ks {
            let pt = measure_slec_mt(k, p, chunk_bytes, min_bytes, threads);
            out.push(ThroughputCell {
                k,
                p,
                mb_per_s: pt.mb_per_s,
            });
        }
    }
    out
}

/// Fig 12: MLEC (C/C, C/D) vs SLEC tradeoff scatter.
pub fn fig12_mlec_vs_slec(model: &ThroughputModel) -> Vec<TradeoffPoint> {
    let g = Geometry::paper_default();
    let c = SimConfig::paper_default();
    let mut out = Vec::new();
    out.extend(enumerate_mlec(&g, &c, MlecScheme::CC, OVERHEAD_BAND, model));
    out.extend(enumerate_mlec(&g, &c, MlecScheme::CD, OVERHEAD_BAND, model));
    for placement in SlecPlacement::ALL {
        out.extend(enumerate_slec(&g, &c, placement, OVERHEAD_BAND, model));
    }
    out
}

/// Fig 15: MLEC C/D vs LRC-Dp tradeoff scatter.
pub fn fig15_mlec_vs_lrc(model: &ThroughputModel) -> Vec<TradeoffPoint> {
    let g = Geometry::paper_default();
    let c = SimConfig::paper_default();
    let mut out = Vec::new();
    out.extend(enumerate_mlec(&g, &c, MlecScheme::CD, OVERHEAD_BAND, model));
    out.extend(enumerate_lrc(
        &g,
        &c,
        OVERHEAD_BAND,
        model,
        ideal_lrc_undecodable_at_limit,
    ));
    out
}

/// One burst-PDL cross-check row of Fig 12 `mode=sim`: the paper's
/// flagship configuration of a Fig 12 family, with its stress-cell burst
/// PDL measured by an adaptive conditional-MC campaign.
#[derive(Debug, Clone)]
pub struct BurstCheckRow {
    /// Configuration label, e.g. `"(10+2)/(17+3)"`.
    pub label: String,
    /// Series name, e.g. `"C/D"` or `"Loc-Cp-S"`.
    pub family: String,
    /// Burst PDL at the stress cell (mean over conditional-MC samples).
    pub burst_pdl: f64,
    /// 95% CI half-width of the estimate.
    pub ci_half_width: f64,
    /// Conditional-MC samples spent (less than the budget when the
    /// adaptive precision target fired).
    pub trials: u64,
    /// Achieved relative standard error.
    pub rel_err: f64,
}

#[allow(clippy::too_many_arguments)]
fn burst_check_campaign(
    run_label: &str,
    display: (&str, &str),
    rel_err: f64,
    min_samples: u64,
    samples: u64,
    seed: u64,
    opts: &HeatmapRunOpts,
    config_hash: u64,
    sample: impl Fn(&mut mlec_runner::TrialRng) -> f64 + Sync,
) -> std::io::Result<BurstCheckRow> {
    let trial = mlec_runner::FnTrial(|seed: u64| {
        let mut rng = trial_rng(seed);
        sample(&mut rng)
    });
    let mut spec = RunSpec::new(
        run_label,
        seed,
        StopRule::until_rel_err(rel_err, min_samples, samples),
    )
    .threads(opts.threads)
    .config_hash(config_hash);
    if let Some(path) = opts.manifest_path(run_label) {
        spec = spec.manifest(path);
    }
    let report = mlec_runner::run(&trial, &spec)?;
    let s = report.summary;
    Ok(BurstCheckRow {
        label: display.0.to_string(),
        family: display.1.to_string(),
        burst_pdl: s.mean,
        ci_half_width: (s.ci_high - s.ci_low) / 2.0,
        trials: s.trials,
        rel_err: s.rel_err,
    })
}

/// Fig 12 `mode=sim`: the analytic tradeoff scatter of
/// [`fig12_mlec_vs_slec`] plus a burst-PDL cross-check — for the paper's
/// flagship configuration of each family, one adaptive conditional-MC
/// campaign through `mlec-runner` measures the PDL of a `(failures,
/// racks)` stress burst with a [`StopRule::until_rel_err`] precision
/// target.
#[allow(clippy::too_many_arguments)]
pub fn fig12_mlec_vs_slec_sim(
    model: &ThroughputModel,
    failures: u32,
    racks: u32,
    rel_err: f64,
    min_samples: u64,
    samples: u64,
    seed: u64,
    opts: &HeatmapRunOpts,
) -> std::io::Result<(Vec<TradeoffPoint>, Vec<BurstCheckRow>)> {
    let points = fig12_mlec_vs_slec(model);
    let g = Geometry::paper_default();
    let mut rows = Vec::new();
    let hash = |extra: &str| {
        Json::obj(vec![
            ("y", Json::U64(failures as u64)),
            ("x", Json::U64(racks as u64)),
            ("extra", Json::Str(extra.to_string())),
        ])
        .fingerprint()
    };
    for scheme in [MlecScheme::CC, MlecScheme::CD] {
        let dep = paper_deployment(scheme);
        let label = dep.params.to_string();
        rows.push(burst_check_campaign(
            &format!("fig12/{}", scheme.name().replace('/', "")),
            (&label, &scheme.name()),
            rel_err,
            min_samples,
            samples,
            seed,
            opts,
            hash(&scheme.name()),
            |rng| mlec_burst_sample(&dep, failures, racks, rng),
        )?);
    }
    let slec = SlecParams::new(7, 3);
    for placement in SlecPlacement::ALL {
        rows.push(burst_check_campaign(
            &format!("fig12/{}", placement.name()),
            (&slec.to_string(), &format!("{}-S", placement.name())),
            rel_err,
            min_samples,
            samples,
            seed,
            opts,
            hash(&format!("{} {}", placement.name(), slec)),
            |rng| slec_burst_sample(&g, slec, placement, failures, racks, rng),
        )?);
    }
    Ok((points, rows))
}

/// One sampled LRC undecodability row of Fig 15 `mode=sim`.
#[derive(Debug, Clone)]
pub struct LrcUndecodableRow {
    /// Configuration label, e.g. `"(14,2,4)"`.
    pub label: String,
    /// Analytic `P(undecodable | r + 2 uniform erasures)`.
    pub analytic: f64,
    /// Sampled estimate (exact rank tests through the runner).
    pub sampled: f64,
    /// Rank tests spent.
    pub trials: u64,
    /// Achieved relative CI half-width.
    pub rel_err: f64,
}

/// Fig 15 `mode=sim`: the tradeoff scatter with every LRC point's
/// undecodability thinning *measured* instead of assumed — one adaptive
/// `mlec-runner` campaign of exact rank tests per LRC configuration
/// (uniform `r + 2`-erasure patterns, [`StopRule::until_rel_err`]),
/// feeding [`enumerate_lrc`] the sampled `P(undecodable)`. The MLEC C/D
/// series stays analytic, as in the paper. Returns the scatter and the
/// per-configuration sampled-vs-analytic rows.
pub fn fig15_mlec_vs_lrc_sim(
    model: &ThroughputModel,
    rel_err: f64,
    min_samples: u64,
    samples: u64,
    seed: u64,
    opts: &HeatmapRunOpts,
) -> std::io::Result<(Vec<TradeoffPoint>, Vec<LrcUndecodableRow>)> {
    let g = Geometry::paper_default();
    let c = SimConfig::paper_default();
    let rows = std::cell::RefCell::new(Vec::new());
    let io_err = std::cell::RefCell::new(None);
    let mut points = enumerate_mlec(&g, &c, MlecScheme::CD, OVERHEAD_BAND, model);
    points.extend(enumerate_lrc(&g, &c, OVERHEAD_BAND, model, |params| {
        let analytic = ideal_lrc_undecodable_at_limit(params);
        if io_err.borrow().is_some() {
            return analytic;
        }
        let lrc = Lrc::new(params.k, params.l, params.r).expect("enumerated LRC is valid");
        let m = params.r + 2;
        let n = lrc.total_chunks();
        let trial = HitTrial(|seed: u64| {
            use rand::Rng as _;
            let mut rng = trial_rng(seed);
            let mut erased = vec![false; n];
            // Uniform m-subset via partial Fisher-Yates over chunk indices.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..m {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
                erased[idx[i]] = true;
            }
            !lrc.decodable(&erased)
        });
        let run_label = format!("fig15/lrc-{}-{}-{}", params.k, params.l, params.r);
        let config_hash = Json::obj(vec![
            ("params", Json::Str(params.to_string())),
            ("erasures", Json::U64(m as u64)),
        ])
        .fingerprint();
        let mut spec = RunSpec::new(
            &run_label,
            seed,
            StopRule::until_rel_err(rel_err, min_samples, samples),
        )
        .threads(opts.threads)
        .config_hash(config_hash);
        if let Some(path) = opts.manifest_path(&run_label) {
            spec = spec.manifest(path);
        }
        match mlec_runner::run(&trial, &spec) {
            Ok(report) => {
                let s = report.summary;
                rows.borrow_mut().push(LrcUndecodableRow {
                    label: params.to_string(),
                    analytic,
                    sampled: s.mean,
                    trials: s.trials,
                    rel_err: s.rel_err,
                });
                s.mean
            }
            Err(e) => {
                *io_err.borrow_mut() = Some(e);
                analytic
            }
        }
    }));
    if let Some(e) = io_err.into_inner() {
        return Err(e);
    }
    Ok((points, rows.into_inner()))
}

/// Fig 13: PDL heatmaps of the four SLEC placements under bursts.
pub fn fig13_slec_burst(spec: &HeatmapSpec, params: SlecParams) -> Vec<Heatmap> {
    fig13_slec_burst_with(spec, params, &HeatmapRunOpts::default())
}

/// [`fig13_slec_burst`] with explicit runner options (threads, manifests).
pub fn fig13_slec_burst_with(
    spec: &HeatmapSpec,
    params: SlecParams,
    opts: &HeatmapRunOpts,
) -> Vec<Heatmap> {
    let g = Geometry::paper_default();
    SlecPlacement::ALL
        .into_iter()
        .map(|placement| {
            let run_label = format!("fig13/{}", placement.name());
            run_heatmap(
                placement.name().to_string(),
                &run_label,
                spec,
                opts,
                heatmap_config_hash(
                    spec,
                    &format!("{} {}+{}", placement.name(), params.k, params.p),
                ),
                |y, x, rng| slec_burst_sample(&g, params, placement, y, x, rng),
            )
        })
        .collect()
}

/// Fig 16: PDL heatmap of the paper's `(14,2,4)` LRC-Dp under bursts.
pub fn fig16_lrc_burst(spec: &HeatmapSpec, params: LrcParams) -> Heatmap {
    fig16_lrc_burst_with(spec, params, &HeatmapRunOpts::default())
}

/// [`fig16_lrc_burst`] with explicit runner options (threads, manifests).
pub fn fig16_lrc_burst_with(
    spec: &HeatmapSpec,
    params: LrcParams,
    opts: &HeatmapRunOpts,
) -> Heatmap {
    let g = Geometry::paper_default();
    let lrc = Lrc::new(params.k, params.l, params.r).expect("valid LRC");
    let curve = lrc_undecodable_by_count(&lrc, 2000, spec.seed);
    run_heatmap(
        format!("LRC-Dp {params}"),
        "fig16/LRC-Dp",
        spec,
        opts,
        heatmap_config_hash(spec, &format!("{params}")),
        |y, x, rng| lrc_burst_sample(&g, params, &curve, y, x, rng),
    )
}

/// §5.1.4 / §5.2.4: repair network traffic comparison.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// System label.
    pub system: String,
    /// Cross-rack repair traffic, TB per day.
    pub tb_per_day: f64,
    /// Cross-rack repair traffic, TB per year.
    pub tb_per_year: f64,
}

/// Repair-traffic comparison: network SLEC, LRC-Dp, and MLEC per method.
pub fn repair_traffic_comparison() -> Vec<TrafficRow> {
    let g = Geometry::paper_default();
    let c = SimConfig::paper_default();
    let mut out = vec![
        TrafficRow {
            system: "Net-SLEC (7+3)".into(),
            tb_per_day: traffic::net_slec_daily_traffic(&g, &c, 7).to_tb(),
            tb_per_year: traffic::net_slec_daily_traffic(&g, &c, 7).to_tb() * 365.25,
        },
        TrafficRow {
            system: "Net-SLEC (14+6)".into(),
            tb_per_day: traffic::net_slec_daily_traffic(&g, &c, 14).to_tb(),
            tb_per_year: traffic::net_slec_daily_traffic(&g, &c, 14).to_tb() * 365.25,
        },
        TrafficRow {
            system: "LRC-Dp (14,2,4)".into(),
            tb_per_day: traffic::lrc_daily_traffic(&g, &c, LrcParams::paper_default()).to_tb(),
            tb_per_year: traffic::lrc_daily_traffic(&g, &c, LrcParams::paper_default()).to_tb()
                * 365.25,
        },
    ];
    for scheme in MlecScheme::ALL {
        let dep = paper_deployment(scheme);
        let rate = system_catastrophic_rate(&dep);
        for method in [RepairMethod::All, RepairMethod::Min] {
            let yearly = traffic::mlec_yearly_traffic(&dep, method, rate).to_tb();
            out.push(TrafficRow {
                system: format!("MLEC {} {}", scheme.name(), method.name()),
                tb_per_day: yearly / 365.25,
                tb_per_year: yearly,
            });
        }
    }
    out
}

mlec_runner::impl_to_json!(Heatmap {
    label,
    xs,
    ys,
    pdl,
    trials
});
mlec_runner::impl_to_json!(RepairMethodSimCell {
    scheme,
    method,
    plan_cross_rack_tb,
    plan_network_time_h,
    sim_cross_rack_tb,
    sim_network_time_h,
    catastrophic_pools,
    missions,
});
mlec_runner::impl_to_json!(BurstCheckRow {
    label,
    family,
    burst_pdl,
    ci_half_width,
    trials,
    rel_err,
});
mlec_runner::impl_to_json!(LrcUndecodableRow {
    label,
    analytic,
    sampled,
    trials,
    rel_err,
});
mlec_runner::impl_to_json!(RepairBandwidthRow {
    scheme,
    disk_size_tb,
    disk_bw_mbs,
    pool_size_tb,
    pool_bw_mbs,
    disk_repair_hours,
    pool_repair_hours,
});
mlec_runner::impl_to_json!(CatastrophicProbRow {
    scheme,
    prob_per_year
});
mlec_runner::impl_to_json!(CatastrophicSimRow {
    scheme,
    rate_per_pool_year,
    rate_ci_low,
    rate_ci_high,
    prob_per_system_year,
    analytic_prob_per_system_year,
    events,
    weighted_events,
    ess,
    mean_weight,
    bias,
    pool_years,
    degraded_frac,
    unobserved,
});
mlec_runner::impl_to_json!(DurabilitySimCell {
    scheme,
    method,
    nines_sim_stage1,
    nines_analytic_stage1,
    events,
    weighted_events,
    ess,
    bias,
    pool_years,
    degraded_frac,
    unobserved,
});
mlec_runner::impl_to_json!(RepairMethodCell {
    scheme,
    method,
    cross_rack_tb,
    network_time_h,
    local_time_h,
});
mlec_runner::impl_to_json!(DurabilityCell {
    scheme,
    method,
    nines
});
mlec_runner::impl_to_json!(ThroughputCell { k, p, mb_per_s });
mlec_runner::impl_to_json!(TrafficRow {
    system,
    tb_per_day,
    tb_per_year,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let rows = table2_and_fig6();
        assert_eq!(rows.len(), 4);
        let cc = &rows[0];
        assert_eq!(cc.scheme, "C/C");
        assert!((cc.disk_bw_mbs - 40.0).abs() < 0.5);
        assert!((cc.pool_bw_mbs - 250.0).abs() < 0.5);
        let dd = &rows[3];
        assert!((dd.disk_bw_mbs - 264.0).abs() < 1.0);
        assert!((dd.pool_bw_mbs - 1363.0).abs() < 1.0);
    }

    #[test]
    fn fig8_matrix_shape_and_headline_cells() {
        let cells = fig8_fig9_repair_methods();
        assert_eq!(cells.len(), 16);
        let rall_cd = cells
            .iter()
            .find(|c| c.scheme == "C/D" && c.method == "R_ALL")
            .unwrap();
        assert!((rall_cd.cross_rack_tb - 26400.0).abs() < 1.0);
        let rhyb_cd = cells
            .iter()
            .find(|c| c.scheme == "C/D" && c.method == "R_HYB")
            .unwrap();
        assert!((rhyb_cd.cross_rack_tb - 3.1).abs() < 0.1);
    }

    #[test]
    fn fig7_magnitudes() {
        let rows = fig7_catastrophic_prob();
        let cc = rows.iter().find(|r| r.scheme == "C/C").unwrap();
        let cd = rows.iter().find(|r| r.scheme == "C/D").unwrap();
        assert!(cc.prob_per_year < 1e-4, "cc={}", cc.prob_per_year);
        assert!(cd.prob_per_year < cc.prob_per_year / 20.0);
    }

    #[test]
    fn fig10_matrix_complete() {
        let cells = fig10_durability();
        assert_eq!(cells.len(), 16);
        assert!(cells.iter().all(|c| c.nines > 5.0));
    }

    #[test]
    fn fig5_small_grid_runs() {
        let spec = HeatmapSpec {
            max: 12,
            step: 6,
            samples: 10,
            seed: 1,
            ..HeatmapSpec::default()
        };
        let maps = fig5_mlec_burst(&spec);
        assert_eq!(maps.len(), 4);
        for m in &maps {
            assert_eq!(m.pdl.len(), m.ys.len());
            // y < x cells are NaN; others are probabilities.
            for (yi, row) in m.pdl.iter().enumerate() {
                for (xi, &v) in row.iter().enumerate() {
                    if m.ys[yi] < m.xs[xi] {
                        assert!(v.is_nan());
                    } else {
                        assert!(
                            (0.0..=1.0).contains(&v),
                            "{} y{} x{} = {v}",
                            m.label,
                            yi,
                            xi
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn traffic_comparison_separates_families() {
        let rows = repair_traffic_comparison();
        let slec = rows
            .iter()
            .find(|r| r.system.starts_with("Net-SLEC (7"))
            .unwrap();
        let mlec = rows
            .iter()
            .find(|r| r.system.contains("C/C") && r.system.contains("R_MIN"))
            .unwrap();
        assert!(slec.tb_per_day > 100.0);
        assert!(mlec.tb_per_year < 0.1);
    }

    #[test]
    fn fig11_tiny_grid() {
        let cells = fig11_encoding_throughput(&[2, 4], &[1, 2], 4096, 1 << 18, 1);
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.mb_per_s > 0.0));
    }

    #[test]
    fn fig11_threaded_grid_measurable() {
        // threads > 1 exercises encode_into_parallel under the measurement
        // path; results stay finite/positive regardless of host core count.
        let cells = fig11_encoding_throughput(&[4], &[2], 4096, 1 << 18, 4);
        assert_eq!(cells.len(), 1);
        assert!(cells
            .iter()
            .all(|c| c.mb_per_s > 0.0 && c.mb_per_s.is_finite()));
    }
}
