//! The experiment registry: every table/figure of the paper as a named,
//! self-describing [`Experiment`] behind one uniform execution surface.
//!
//! Each experiment declares its [`ExperimentInfo`] — name, title, paper
//! reference, supported [`Mode`]s, and a typed parameter schema — and the
//! driver (`mlec` in `mlec-bench`) resolves `key=value` arguments against
//! that schema *before* running anything: unknown keys, malformed values,
//! and unsupported modes are hard errors, never silently ignored. The
//! implementations live in [`crate::figures`]; the per-figure binaries are
//! thin compatibility shims over [`run_experiment`].

use crate::experiments::HeatmapRunOpts;
use crate::report::{dump_json_in, DumpError};
use mlec_runner::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Value type of a declared parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Unsigned integer (`trials=64`).
    U64,
    /// Float (`rel_err=0.05`).
    F64,
    /// Free string (`bias=auto`).
    Str,
}

impl ParamKind {
    /// Human name used in error messages and `mlec info`.
    pub fn name(self) -> &'static str {
        match self {
            ParamKind::U64 => "integer",
            ParamKind::F64 => "number",
            ParamKind::Str => "string",
        }
    }

    fn validate(self, value: &str) -> bool {
        match self {
            ParamKind::U64 => value.parse::<u64>().is_ok(),
            ParamKind::F64 => value.parse::<f64>().is_ok_and(f64::is_finite),
            ParamKind::Str => true,
        }
    }
}

/// One declared `key=value` parameter of an experiment.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Key as typed on the command line.
    pub name: &'static str,
    /// Value type, validated at parse time.
    pub kind: ParamKind,
    /// Default, rendered exactly as a user could type it.
    pub default: &'static str,
    /// One-line description for `mlec info`.
    pub help: &'static str,
}

/// Execution mode of an experiment. The first entry of
/// [`ExperimentInfo::modes`] is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Closed-form / Markov-chain computation; no sampling.
    Analytic,
    /// Monte Carlo through `mlec-runner` (deterministic per seed).
    Sim,
    /// Wall-clock measurement on this machine's hardware (Fig 11).
    Measured,
}

impl Mode {
    /// The `mode=` value selecting this mode.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Analytic => "analytic",
            Mode::Sim => "sim",
            Mode::Measured => "measured",
        }
    }
}

/// Static self-description of an experiment.
#[derive(Debug)]
pub struct ExperimentInfo {
    /// Registry name (`mlec run <name>`).
    pub name: &'static str,
    /// Display title, e.g. `"Figure 5"`.
    pub title: &'static str,
    /// One-line description (the banner tail).
    pub description: &'static str,
    /// Where in the paper this figure/table lives.
    pub paper_ref: &'static str,
    /// Supported modes; first is the default.
    pub modes: &'static [Mode],
    /// Parameter schema (global keys `mode`/`out`/`threads`/`manifests`
    /// are accepted everywhere and not repeated here).
    pub params: &'static [ParamSpec],
    /// Overrides applied by `mlec run all --fast` — must name declared
    /// params with valid values (enforced by registry tests).
    pub fast: &'static [(&'static str, &'static str)],
}

impl ExperimentInfo {
    fn param(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Default mode (first declared).
    pub fn default_mode(&self) -> Mode {
        self.modes[0]
    }

    fn supported_modes(&self) -> String {
        self.modes
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Why an experiment could not be resolved or executed.
#[derive(Debug)]
pub enum ExperimentError {
    /// No experiment with this name is registered.
    UnknownExperiment(String),
    /// An argument was not of the form `key=value`.
    BadArg(String),
    /// `key` is not in the experiment's schema.
    UnknownParam {
        /// The unrecognized key.
        name: String,
        /// The accepted keys, for the error message.
        allowed: String,
    },
    /// The value does not parse under the declared [`ParamKind`].
    BadValue {
        /// Parameter name.
        name: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// `mode=` named a mode the experiment does not implement.
    UnsupportedMode {
        /// Experiment name.
        name: String,
        /// Requested mode.
        mode: String,
        /// Supported modes.
        supported: String,
    },
    /// A Monte Carlo campaign failed (manifest I/O, config mismatch…).
    Io(std::io::Error),
    /// Writing a JSON artifact failed.
    Dump(DumpError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownExperiment(n) => match suggest(n) {
                Some(s) => {
                    write!(
                        f,
                        "unknown experiment `{n}` — did you mean `{s}`? (run `mlec list`)"
                    )
                }
                None => write!(f, "unknown experiment `{n}` (run `mlec list`)"),
            },
            ExperimentError::BadArg(a) => {
                write!(f, "bad argument `{a}`: expected key=value")
            }
            ExperimentError::UnknownParam { name, allowed } => {
                write!(f, "unknown parameter `{name}` (accepted: {allowed})")
            }
            ExperimentError::BadValue {
                name,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid value `{value}` for `{name}`: expected {expected}"
                )
            }
            ExperimentError::UnsupportedMode {
                name,
                mode,
                supported,
            } => {
                let candidates: Vec<&str> = supported.split(", ").collect();
                match suggest_among(mode, &candidates) {
                    Some(s) => write!(
                        f,
                        "experiment `{name}` has no mode={mode} — did you mean \
                         `mode={s}`? (supported: {supported})"
                    ),
                    None => write!(
                        f,
                        "experiment `{name}` has no mode={mode} (supported: {supported})"
                    ),
                }
            }
            ExperimentError::Io(e) => write!(f, "campaign I/O: {e}"),
            ExperimentError::Dump(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<std::io::Error> for ExperimentError {
    fn from(e: std::io::Error) -> Self {
        ExperimentError::Io(e)
    }
}

impl From<DumpError> for ExperimentError {
    fn from(e: DumpError) -> Self {
        ExperimentError::Dump(e)
    }
}

/// Resolved, validated execution context handed to [`Experiment::run`].
#[derive(Debug)]
pub struct ExperimentCtx {
    /// Selected mode (validated against the experiment's `modes`).
    pub mode: Mode,
    /// Artifact directory (`out=DIR`, default `target/figures`).
    pub out_dir: PathBuf,
    /// Runner execution options: `threads=N`, `manifests=DIR`.
    pub runner: HeatmapRunOpts,
    info: &'static ExperimentInfo,
    values: BTreeMap<&'static str, String>,
}

impl ExperimentCtx {
    /// Parse raw `key=value` arguments against an experiment's schema.
    /// Every key must be a declared parameter or one of the global keys
    /// (`mode`, `out`, `threads`, `manifests`); every value must parse
    /// under the declared kind. Later duplicates override earlier ones.
    pub fn parse(
        info: &'static ExperimentInfo,
        raw_args: &[String],
    ) -> Result<ExperimentCtx, ExperimentError> {
        let mut ctx = ExperimentCtx {
            mode: info.default_mode(),
            out_dir: Path::new("target").join("figures"),
            runner: HeatmapRunOpts::default(),
            info,
            values: info
                .params
                .iter()
                .map(|p| (p.name, p.default.to_string()))
                .collect(),
        };
        for arg in raw_args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(ExperimentError::BadArg(arg.clone()));
            };
            match key {
                "mode" => {
                    let mode = info.modes.iter().copied().find(|m| m.name() == value);
                    match mode {
                        Some(m) => ctx.mode = m,
                        None => {
                            return Err(ExperimentError::UnsupportedMode {
                                name: info.name.to_string(),
                                mode: value.to_string(),
                                supported: info.supported_modes(),
                            })
                        }
                    }
                }
                "out" => ctx.out_dir = PathBuf::from(value),
                "threads" => {
                    ctx.runner.threads = value.parse().map_err(|_| ExperimentError::BadValue {
                        name: "threads".to_string(),
                        value: value.to_string(),
                        expected: "integer (0 = all cores)".to_string(),
                    })?;
                    // Experiments that also declare `threads` in their
                    // schema (fig11/fig12/fig15: encode-side parallelism)
                    // receive the same value there — one knob, both layers.
                    if let Some(spec) = info.param("threads") {
                        ctx.values.insert(spec.name, value.to_string());
                    }
                }
                "manifests" => ctx.runner.manifest_dir = Some(PathBuf::from(value)),
                _ => match info.param(key) {
                    Some(spec) => {
                        if !spec.kind.validate(value) {
                            return Err(ExperimentError::BadValue {
                                name: key.to_string(),
                                value: value.to_string(),
                                expected: spec.kind.name().to_string(),
                            });
                        }
                        ctx.values.insert(spec.name, value.to_string());
                    }
                    None => {
                        let mut allowed: Vec<&str> = info.params.iter().map(|p| p.name).collect();
                        // Global keys, deduped against the schema (an
                        // experiment may declare `threads` to opt into it
                        // as a real parameter).
                        for global in ["mode", "out", "threads", "manifests"] {
                            if !allowed.contains(&global) {
                                allowed.push(global);
                            }
                        }
                        return Err(ExperimentError::UnknownParam {
                            name: key.to_string(),
                            allowed: allowed.join(", "),
                        });
                    }
                },
            }
        }
        Ok(ctx)
    }

    fn raw(&self, name: &str) -> &str {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("{}: parameter `{name}` not declared", self.info.name))
    }

    /// A declared [`ParamKind::U64`] parameter (validated at parse time).
    pub fn u64(&self, name: &str) -> u64 {
        self.raw(name).parse().expect("validated at parse time")
    }

    /// A declared [`ParamKind::F64`] parameter (validated at parse time).
    pub fn f64(&self, name: &str) -> f64 {
        self.raw(name).parse().expect("validated at parse time")
    }

    /// A declared [`ParamKind::Str`] parameter.
    pub fn str(&self, name: &str) -> &str {
        self.raw(name)
    }

    /// The `bias=` knob of the importance-sampled modes: `auto` → `None`
    /// (per-scheme auto-selection), otherwise a positive finite
    /// multiplier (`1` = direct simulation).
    pub fn bias(&self) -> Result<Option<f64>, ExperimentError> {
        let raw = self.str("bias");
        if raw == "auto" {
            return Ok(None);
        }
        match raw.parse::<f64>() {
            Ok(b) if b.is_finite() && b > 0.0 => Ok(Some(b)),
            _ => Err(ExperimentError::BadValue {
                name: "bias".to_string(),
                value: raw.to_string(),
                expected: "`auto` or a positive number".to_string(),
            }),
        }
    }
}

/// What an experiment produced: rendered text plus named JSON artifacts.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Human-readable report (tables, heatmaps, paper-comparison notes).
    pub text: String,
    /// `(artifact_name, value)` pairs, written as
    /// `<out_dir>/<name>.json` by [`run_experiment`].
    pub artifacts: Vec<(String, Json)>,
    /// Failed acceptance gates (e.g. `require_events=`); a non-empty list
    /// makes the driver exit non-zero after printing the report.
    pub gate_failures: Vec<String>,
}

impl ExperimentOutput {
    /// Empty output to be filled in.
    pub fn new() -> ExperimentOutput {
        ExperimentOutput::default()
    }

    /// Queue a JSON artifact for dumping.
    pub fn artifact<T: mlec_runner::ToJson + ?Sized>(&mut self, name: &str, value: &T) {
        self.artifacts.push((name.to_string(), value.to_json()));
    }
}

/// A registered experiment: static self-description plus an execution
/// entry point. Implementations live in [`crate::figures`].
pub trait Experiment: Sync {
    /// The experiment's static description and parameter schema.
    fn info(&self) -> &'static ExperimentInfo;
    /// Execute under a validated context.
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError>;
}

/// Every registered experiment, in the paper's presentation order.
pub static REGISTRY: &[&dyn Experiment] = &[
    &crate::figures::Fig01,
    &crate::figures::Table2,
    &crate::figures::Fig05,
    &crate::figures::Fig06,
    &crate::figures::Fig07,
    &crate::figures::Fig08,
    &crate::figures::Fig09,
    &crate::figures::Fig10,
    &crate::figures::Fig11,
    &crate::figures::Fig12,
    &crate::figures::Fig13,
    &crate::figures::Fig15,
    &crate::figures::Fig16,
    &crate::figures::Sec514,
    &crate::figures::Ablations,
    &crate::figures::PaperSummary,
    &crate::figures::Validation,
    &crate::figures::TraceTools,
    &crate::figures::StoreBench,
];

/// Look up an experiment by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.info().name == name)
}

/// Edit distance between two short ASCII names (classic two-row DP).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<u8>, Vec<u8>) = (a.bytes().collect(), b.bytes().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The registered name closest to `name`, when close enough to be a
/// plausible typo (edit distance ≤ 2, or a unique prefix). Ties break
/// toward the lexicographically first candidate so the suggestion is
/// stable.
pub fn suggest(name: &str) -> Option<&'static str> {
    let names: Vec<&'static str> = REGISTRY.iter().map(|e| e.info().name).collect();
    suggest_among(name, &names)
}

/// The candidate closest to `input` under the same typo heuristics as
/// [`suggest`] (unique prefix, then edit distance ≤ 2, lexicographic
/// tie-break). Used for *parameter values* too: unknown `mode=`/`method=`
/// values get the same did-you-mean treatment as experiment names.
/// Matching is case-insensitive so `r_layer` suggests `R_LAYER`.
pub fn suggest_among<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let mut names: Vec<&'a str> = candidates.to_vec();
    names.sort_unstable();
    let input_lc = input.to_ascii_lowercase();
    let prefixed: Vec<&&str> = names
        .iter()
        .filter(|n| n.to_ascii_lowercase().starts_with(&input_lc))
        .collect();
    if let [only] = prefixed[..] {
        if !input.is_empty() {
            return Some(only);
        }
    }
    names
        .iter()
        .map(|n| (edit_distance(&input_lc, &n.to_ascii_lowercase()), *n))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, n)| (d, n))
        .map(|(_, n)| n)
}

/// Result of [`run_experiment`]: the rendered report plus where the
/// artifacts landed.
#[derive(Debug)]
pub struct RunOutcome {
    /// The experiment that ran.
    pub info: &'static ExperimentInfo,
    /// Mode it ran under.
    pub mode: Mode,
    /// Rendered report text.
    pub text: String,
    /// JSON artifacts written (one per [`ExperimentOutput::artifacts`]).
    pub artifact_paths: Vec<PathBuf>,
    /// Failed acceptance gates (non-empty → the caller should exit
    /// non-zero).
    pub gate_failures: Vec<String>,
}

/// Resolve `name`, validate `raw_args` against its schema, execute, and
/// dump every artifact under the context's `out=` directory.
pub fn run_experiment(name: &str, raw_args: &[String]) -> Result<RunOutcome, ExperimentError> {
    let exp = find(name).ok_or_else(|| ExperimentError::UnknownExperiment(name.to_string()))?;
    let info = exp.info();
    let ctx = ExperimentCtx::parse(info, raw_args)?;
    let output = exp.run(&ctx)?;
    let mut artifact_paths = Vec::new();
    for (artifact, value) in &output.artifacts {
        artifact_paths.push(dump_json_in(&ctx.out_dir, artifact, value)?);
    }
    Ok(RunOutcome {
        info,
        mode: ctx.mode,
        text: output.text,
        artifact_paths,
        gate_failures: output.gate_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut seen = BTreeSet::new();
        for exp in REGISTRY {
            let info = exp.info();
            assert!(!info.name.is_empty());
            assert!(
                seen.insert(info.name),
                "duplicate experiment name {}",
                info.name
            );
            assert!(!info.modes.is_empty(), "{}: no modes", info.name);
        }
    }

    #[test]
    fn every_experiments_md_entry_is_registered_exactly_once() {
        // EXPERIMENTS.md is the catalog of record; every regenerable
        // figure/table it documents must resolve through the registry.
        // (Fig 14 is structural — pinned by crates/ec tests, no runner.)
        let doc = include_str!("../../../EXPERIMENTS.md");
        let expected = [
            ("## Table 2", "table2"),
            ("## Fig 1 ", "fig01"),
            ("## Fig 5 ", "fig05"),
            ("## Fig 6 ", "fig06"),
            ("## Fig 7 ", "fig07"),
            ("## Fig 8 ", "fig08"),
            ("## Fig 9 ", "fig09"),
            ("## Fig 10 ", "fig10"),
            ("## Fig 11 ", "fig11"),
            ("## Fig 12 ", "fig12"),
            ("## Fig 13 ", "fig13"),
            ("## Fig 15 ", "fig15"),
            ("## Fig 16 ", "fig16"),
            ("## §5.1.4", "sec514"),
            ("## store_bench", "store_bench"),
        ];
        for (heading, name) in expected {
            assert!(doc.contains(heading), "EXPERIMENTS.md lost `{heading}`");
            assert_eq!(
                REGISTRY.iter().filter(|e| e.info().name == name).count(),
                1,
                "{name} must be registered exactly once"
            );
            assert!(
                doc.contains(&format!("mlec run {name}")),
                "EXPERIMENTS.md must document `mlec run {name}`"
            );
        }
    }

    #[test]
    fn schema_round_trip_defaults_and_fast_overrides() {
        for exp in REGISTRY {
            let info = exp.info();
            for p in info.params {
                assert!(
                    p.kind.validate(p.default),
                    "{}: default for {} does not parse as {}",
                    info.name,
                    p.name,
                    p.kind.name()
                );
            }
            // No-arg parse succeeds and typed getters return the defaults.
            let ctx = ExperimentCtx::parse(info, &[]).unwrap();
            assert_eq!(ctx.mode, info.default_mode());
            for p in info.params {
                match p.kind {
                    ParamKind::U64 => assert_eq!(ctx.u64(p.name).to_string(), p.default),
                    ParamKind::F64 => {
                        assert_eq!(ctx.f64(p.name), p.default.parse::<f64>().unwrap());
                    }
                    ParamKind::Str => assert_eq!(ctx.str(p.name), p.default),
                }
            }
            // Fast overrides must target declared params with valid values.
            for (key, value) in info.fast {
                let spec = info
                    .param(key)
                    .unwrap_or_else(|| panic!("{}: fast override names unknown {key}", info.name));
                assert!(spec.kind.validate(value));
            }
            // Round-trip: feeding every default back as an explicit
            // argument parses cleanly.
            let explicit: Vec<String> = info
                .params
                .iter()
                .map(|p| format!("{}={}", p.name, p.default))
                .collect();
            ExperimentCtx::parse(info, &explicit).unwrap();
        }
    }

    #[test]
    fn unknown_name_param_and_value_are_hard_errors() {
        assert!(matches!(
            run_experiment("fig99", &[]),
            Err(ExperimentError::UnknownExperiment(_))
        ));
        // The historic silent-typo case: `afr_pc=1` must now error.
        let err = run_experiment("fig07", &args(&["afr_pc=1"])).unwrap_err();
        match err {
            ExperimentError::UnknownParam { name, allowed } => {
                assert_eq!(name, "afr_pc");
                assert!(allowed.contains("afr_pct"));
            }
            other => panic!("expected UnknownParam, got {other}"),
        }
        assert!(matches!(
            run_experiment("fig07", &args(&["trials=many"])),
            Err(ExperimentError::BadValue { .. })
        ));
        assert!(matches!(
            run_experiment("fig06", &args(&["mode=sim"])),
            Err(ExperimentError::UnsupportedMode { .. })
        ));
        assert!(matches!(
            run_experiment("fig06", &args(&["--verbose"])),
            Err(ExperimentError::BadArg(_))
        ));
    }

    #[test]
    fn unknown_experiment_suggests_a_close_name() {
        assert_eq!(suggest("store_benc"), Some("store_bench"));
        assert_eq!(suggest("fig5"), Some("fig05"));
        assert_eq!(suggest("storebench"), Some("store_bench"));
        assert_eq!(suggest("zzzzzz"), None);
        let msg = run_experiment("store_benchh", &[]).unwrap_err().to_string();
        assert!(msg.contains("did you mean `store_bench`"), "{msg}");
        // A hopeless name still gets the plain error.
        let msg = run_experiment("frobnicate", &[]).unwrap_err().to_string();
        assert!(!msg.contains("did you mean"), "{msg}");
    }

    #[test]
    fn unknown_mode_value_suggests_a_close_mode() {
        // Parameter-value did-you-mean: `mode=sin` is a plausible typo of
        // the supported `sim`.
        let msg = run_experiment("fig08", &args(&["mode=sin"]))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("did you mean `mode=sim`"), "{msg}");
        // A hopeless mode still lists the supported set without a hint.
        let msg = run_experiment("fig08", &args(&["mode=zzzzzz"]))
            .unwrap_err()
            .to_string();
        assert!(!msg.contains("did you mean"), "{msg}");
        assert!(msg.contains("supported"), "{msg}");
    }

    #[test]
    fn unknown_method_value_suggests_a_close_label() {
        let msg = run_experiment("fig08", &args(&["method=R_LAYR"]))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("did you mean `R_LAYER`"), "{msg}");
        let msg = run_experiment("fig09", &args(&["method=piggy"]))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("did you mean `R_PIGGY`"), "{msg}");
        // Unknown method values are usage errors (BadValue), so the driver
        // exits 2, same as any malformed parameter.
        assert!(matches!(
            run_experiment("fig08", &args(&["method=R_NOPE,R_ALL"])),
            Err(ExperimentError::BadValue { .. })
        ));
        assert!(matches!(
            run_experiment("fig08", &args(&["method=,"])),
            Err(ExperimentError::BadValue { .. })
        ));
    }

    #[test]
    fn suggest_among_prefers_unique_prefix_then_distance() {
        let candidates = ["R_ALL", "R_FCO", "R_HYB", "R_MIN", "R_LAYER", "R_PIGGY"];
        assert_eq!(suggest_among("R_P", &candidates), Some("R_PIGGY"));
        assert_eq!(suggest_among("r_fco", &candidates), Some("R_FCO"));
        assert_eq!(suggest_among("R_LAYERS", &candidates), Some("R_LAYER"));
        assert_eq!(suggest_among("nothing_close", &candidates), None);
        // Ambiguous prefix falls back to edit distance.
        assert_eq!(suggest_among("R_", &candidates), None);
    }

    #[test]
    fn mode_selection_and_bias_validation() {
        let info = find("fig07").unwrap().info();
        let ctx = ExperimentCtx::parse(info, &args(&["mode=sim", "bias=4"])).unwrap();
        assert_eq!(ctx.mode, Mode::Sim);
        assert_eq!(ctx.bias().unwrap(), Some(4.0));
        let ctx = ExperimentCtx::parse(info, &[]).unwrap();
        assert_eq!(ctx.mode, Mode::Analytic);
        assert_eq!(ctx.bias().unwrap(), None);
        let ctx = ExperimentCtx::parse(info, &args(&["bias=-3"])).unwrap();
        assert!(ctx.bias().is_err());
    }

    #[test]
    fn global_keys_resolve_into_ctx() {
        let info = find("fig05").unwrap().info();
        let ctx = ExperimentCtx::parse(
            info,
            &args(&["threads=4", "manifests=/tmp/m", "out=/tmp/f", "samples=9"]),
        )
        .unwrap();
        assert_eq!(ctx.runner.threads, 4);
        assert_eq!(
            ctx.runner.manifest_dir.as_deref(),
            Some(Path::new("/tmp/m"))
        );
        assert_eq!(ctx.out_dir, Path::new("/tmp/f"));
        assert_eq!(ctx.u64("samples"), 9);
    }
}
