//! Plain-text rendering for the figure binaries: aligned tables and
//! log-scale heatmaps that read like the paper's figures in a terminal,
//! plus JSON dumping for machine consumption.

use crate::experiments::Heatmap;
use mlec_runner::ToJson;
use std::path::Path;

/// Render rows as an aligned ASCII table. `headers.len()` must match every
/// row's length.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a PDL heatmap with one character per cell on a log10 scale:
/// `.` = PDL ≤ 1e-6, `1`..`6` log-decades up to 0.3, `9` ≥ 0.3, space =
/// impossible cell.
pub fn render_heatmap(map: &Heatmap) -> String {
    let mut out = format!("PDL heatmap: {} (rows: failures, cols: racks)\n", map.label);
    out.push_str("      ");
    for &x in &map.xs {
        out.push_str(&format!("{x:>3}"));
    }
    out.push('\n');
    for (yi, &y) in map.ys.iter().enumerate() {
        out.push_str(&format!("y={y:>3} "));
        for v in &map.pdl[yi] {
            let c = pdl_char(*v);
            out.push_str(&format!("  {c}"));
        }
        out.push('\n');
    }
    out.push_str("scale: ' '=n/a  .=<1e-6  1..6 = 1e-6..1e-1 (log10)  9=>0.3\n");
    out
}

fn pdl_char(v: f64) -> char {
    if v.is_nan() {
        ' '
    } else if v >= 0.3 {
        '9'
    } else if v <= 1e-6 {
        '.'
    } else {
        // log10 in (-6, -0.52): map to '1'..='6'.
        let mag = (-v.log10()).clamp(0.0, 6.0);
        let idx = (7.0 - mag).clamp(1.0, 6.0) as u8;
        (b'0' + idx) as char
    }
}

/// Failure to write a JSON artifact: the path attempted plus the
/// underlying I/O error. Callers must surface it (the figure data is the
/// point of a run), not silently drop the artifact.
#[derive(Debug)]
pub struct DumpError {
    /// The artifact path the write targeted.
    pub path: std::path::PathBuf,
    /// The I/O failure.
    pub source: std::io::Error,
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failed to write artifact {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for DumpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Write any [`ToJson`] result as pretty JSON at `<dir>/<name>.json`,
/// creating `dir` (and any missing parents) as needed. Returns the path
/// written.
pub fn dump_json_in<T: ToJson + ?Sized>(
    dir: &Path,
    name: &str,
    value: &T,
) -> Result<std::path::PathBuf, DumpError> {
    let path = dir.join(format!("{name}.json"));
    let write = |p: &Path| -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(p, value.to_json().to_string_pretty())
    };
    match write(&path) {
        Ok(()) => Ok(path),
        Err(source) => Err(DumpError { path, source }),
    }
}

/// [`dump_json_in`] at the default artifact directory,
/// `target/figures/<name>.json`.
pub fn dump_json<T: ToJson + ?Sized>(
    name: &str,
    value: &T,
) -> Result<std::path::PathBuf, DumpError> {
    dump_json_in(&Path::new("target").join("figures"), name, value)
}

/// Format a float with engineering-friendly precision: probabilities in
/// scientific notation, moderate numbers with 1 decimal.
pub fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 1e-3 || v.abs() >= 1e6 {
        format!("{v:.2e}")
    } else if v.abs() < 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_table_alignment() {
        let t = ascii_table(
            &["scheme", "value"],
            &[
                vec!["C/C".into(), "40".into()],
                vec!["D/D".into(), "1363.6".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[3].contains("1363.6"));
    }

    #[test]
    fn heatmap_rendering_characters() {
        let map = Heatmap {
            label: "test".into(),
            xs: vec![1, 2],
            ys: vec![1, 2],
            pdl: vec![vec![0.0, f64::NAN], vec![1e-4, 1.0]],
            trials: 0,
        };
        let s = render_heatmap(&map);
        assert!(s.contains("test"));
        assert!(s.contains('9'));
        assert!(s.contains('.'));
    }

    #[test]
    fn pdl_char_ordering() {
        // Higher PDL must never render as a lower digit.
        let probs = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0];
        let chars: Vec<char> = probs.iter().map(|&p| pdl_char(p)).collect();
        for w in chars.windows(2) {
            assert!(w[0] <= w[1], "{chars:?}");
        }
    }

    #[test]
    fn dump_json_creates_nested_dirs_and_reports_typed_errors() {
        let base = std::env::temp_dir().join(format!("mlec-dump-{}", std::process::id()));
        let nested = base.join("deep").join("figures");
        let map = Heatmap {
            label: "t".into(),
            xs: vec![1],
            ys: vec![1],
            pdl: vec![vec![0.5]],
            trials: 1,
        };
        let path = dump_json_in(&nested, "probe", &map).unwrap();
        assert!(path.ends_with("deep/figures/probe.json"));
        assert!(std::fs::read_to_string(&path).unwrap().contains("\"pdl\""));
        std::fs::remove_dir_all(&base).unwrap();

        // A directory we cannot create (a file in the way) must surface a
        // typed error naming the artifact path.
        let blocker = base.join("blocked");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::write(&blocker, b"not a dir").unwrap();
        let err = dump_json_in(&blocker, "probe", &map).unwrap_err();
        assert!(err.path.ends_with("blocked/probe.json"));
        assert!(err.to_string().contains("probe.json"));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn fmt_value_ranges() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(1e-9), "1.00e-9");
        assert_eq!(fmt_value(1.2345), "1.23");
        assert_eq!(fmt_value(1363.6), "1363.6");
    }
}
