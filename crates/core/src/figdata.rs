//! Digitized data behind the paper's motivational Figure 1: storage scaling
//! over the years — disks per system (Backblaze fleet, US DOE lab systems)
//! and capacity per disk (max available, average sold).
//!
//! Values are read off the published figure (approximate by nature); the
//! `fig01_scaling` binary reprints the series so the reproduction archive is
//! self-contained.

/// One (year, value) sample of a scaling series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YearSample {
    /// Calendar year.
    pub year: u32,
    /// Value in the series' unit.
    pub value: f64,
}

/// A named series with its unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingSeries {
    /// Series name as labeled in the figure.
    pub name: &'static str,
    /// Unit of the values.
    pub unit: &'static str,
    /// Samples in year order.
    pub samples: Vec<YearSample>,
}

fn series(name: &'static str, unit: &'static str, points: &[(u32, f64)]) -> ScalingSeries {
    ScalingSeries {
        name,
        unit,
        samples: points
            .iter()
            .map(|&(year, value)| YearSample { year, value })
            .collect(),
    }
}

/// Figure 1a: disks per system (thousands).
pub fn disks_per_system() -> Vec<ScalingSeries> {
    vec![
        series(
            "Backblaze",
            "thousand disks",
            &[
                (2010, 4.0),
                (2013, 27.0),
                (2016, 68.0),
                (2019, 116.0),
                (2022, 202.0),
            ],
        ),
        series(
            "US DOE",
            "thousand disks",
            &[
                (2010, 10.0),
                (2013, 20.0),
                (2016, 35.0),
                (2019, 44.0),
                (2022, 47.0),
            ],
        ),
    ]
}

/// Figure 1b: capacity per disk (TB).
pub fn capacity_per_disk() -> Vec<ScalingSeries> {
    vec![
        series(
            "Max Available",
            "TB",
            &[
                (2010, 3.0),
                (2013, 6.0),
                (2016, 10.0),
                (2019, 16.0),
                (2022, 20.0),
            ],
        ),
        series(
            "Average Sold",
            "TB",
            &[
                (2010, 1.0),
                (2013, 2.0),
                (2016, 4.5),
                (2019, 8.0),
                (2022, 12.3),
            ],
        ),
    ]
}

mlec_runner::impl_to_json!(YearSample { year, value });
mlec_runner::impl_to_json!(ScalingSeries {
    name,
    unit,
    samples
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_monotone_growth() {
        // The figure's whole point: everything keeps growing.
        for s in disks_per_system().iter().chain(capacity_per_disk().iter()) {
            for w in s.samples.windows(2) {
                assert!(w[1].year > w[0].year, "{}: years ordered", s.name);
                assert!(
                    w[1].value >= w[0].value,
                    "{}: values non-decreasing",
                    s.name
                );
            }
        }
    }

    #[test]
    fn headline_2022_values() {
        // Backblaze ≈ 202k disks, max disk 20 TB in 2022 (as printed in the
        // figure).
        let bb = &disks_per_system()[0];
        assert_eq!(bb.samples.last().unwrap().value, 202.0);
        let max = &capacity_per_disk()[0];
        assert_eq!(max.samples.last().unwrap().value, 20.0);
    }
}
