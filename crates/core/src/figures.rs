//! [`Experiment`] implementations for every figure/table in the registry:
//! the rendering that used to live in the per-figure binaries, now in one
//! place so the `mlec` driver, the compatibility shims, and the regression
//! tests all execute the identical code path.
//!
//! Each experiment turns typed context parameters into the row/series
//! functions of [`crate::experiments`] and renders the paper-comparable
//! report into [`ExperimentOutput::text`]; JSON artifacts keep their
//! historical names (`fig05.json`, `table2.json`, …).

use crate::experiments::{
    fig10_durability, fig10_durability_sim, fig11_encoding_throughput, fig12_mlec_vs_slec,
    fig12_mlec_vs_slec_sim, fig13_slec_burst_with, fig15_mlec_vs_lrc, fig15_mlec_vs_lrc_sim,
    fig16_lrc_burst_with, fig5_mlec_burst_with, fig7_catastrophic_prob, fig7_catastrophic_prob_sim,
    fig8_fig9_repair_methods, fig8_fig9_repair_methods_for, fig8_fig9_repair_methods_sim,
    repair_traffic_comparison, table2_and_fig6, HeatmapRunOpts, HeatmapSpec, RepairMethodSimCell,
};
use crate::figdata;
use crate::registry::{
    suggest_among, Experiment, ExperimentCtx, ExperimentError, ExperimentInfo, ExperimentOutput,
    Mode, ParamKind, ParamSpec,
};
use crate::report::{ascii_table, fmt_value, render_heatmap};
use mlec_analysis::markov::nines;
use mlec_ec::throughput::ThroughputModel;
use mlec_ec::{LrcParams, SlecParams};
use mlec_runner::{impl_to_json, Json, RunSpec, StopRule};
use mlec_sim::config::MlecDeployment;
use mlec_sim::RepairMethod;
use mlec_topology::{Geometry, MlecScheme};

/// `writeln!` into an [`ExperimentOutput`] text buffer (infallible).
macro_rules! w {
    ($dst:expr) => {{
        use std::fmt::Write as _;
        let _ = writeln!($dst);
    }};
    ($dst:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($dst, $($arg)*);
    }};
}

macro_rules! params {
    ($(($name:literal, $kind:ident, $default:literal, $help:literal)),* $(,)?) => {
        &[$(ParamSpec {
            name: $name,
            kind: ParamKind::$kind,
            default: $default,
            help: $help,
        }),*]
    };
}

macro_rules! experiment {
    ($ty:ident, $info:ident, $run:path) => {
        /// Registered experiment (see its [`ExperimentInfo`]).
        pub struct $ty;
        impl Experiment for $ty {
            fn info(&self) -> &'static ExperimentInfo {
                &$info
            }
            fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
                $run(ctx)
            }
        }
    };
}

const SCHEMES: [&str; 4] = ["C/C", "C/D", "D/C", "D/D"];
const METHODS: [&str; 4] = ["R_ALL", "R_FCO", "R_HYB", "R_MIN"];

static HEATMAP_PARAMS: &[ParamSpec] = params![
    (
        "max",
        U64,
        "60",
        "largest failures/racks grid line (paper: 60)"
    ),
    (
        "step",
        U64,
        "6",
        "grid step above 6 (1 = the paper's full grid)"
    ),
    (
        "samples",
        U64,
        "60",
        "conditional-MC samples per cell (the budget cap when rel_err is set)"
    ),
    ("seed", U64, "42", "root RNG seed"),
    (
        "rel_err",
        F64,
        "0",
        "adaptive stop: target relative std error of the pooled grid (0 = fixed budget)"
    ),
    (
        "min_samples",
        U64,
        "8",
        "minimum samples per cell before an adaptive stop may fire"
    ),
];

static HEATMAP_FAST: &[(&str, &str)] = &[("max", "12"), ("samples", "8")];

fn heatmap_spec(ctx: &ExperimentCtx) -> HeatmapSpec {
    let rel_err = ctx.f64("rel_err");
    HeatmapSpec {
        max: ctx.u64("max") as u32,
        step: (ctx.u64("step") as u32).max(1),
        samples: (ctx.u64("samples") as u32).max(1),
        seed: ctx.u64("seed"),
        rel_err: (rel_err > 0.0).then_some(rel_err),
        min_samples: ctx.u64("min_samples") as u32,
    }
}

fn heatmap_grid_line(out: &mut ExperimentOutput, spec: &HeatmapSpec) {
    let adaptive = match spec.rel_err {
        Some(r) => format!(" (adaptive: rel_err={r}, >={} per cell)", spec.min_samples),
        None => String::new(),
    };
    w!(
        out.text,
        "grid: 1..{} step {}, {} layout samples/cell{adaptive}\n",
        spec.max,
        spec.step,
        spec.samples
    );
}

fn render_maps(
    out: &mut ExperimentOutput,
    spec: &HeatmapSpec,
    maps: &[crate::experiments::Heatmap],
) {
    for map in maps {
        w!(out.text, "{}", render_heatmap(map));
        if spec.rel_err.is_some() {
            w!(out.text, "  [adaptive stop: {} trials spent]\n", map.trials);
        }
    }
}

// ---------------------------------------------------------------- fig01

static FIG01_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig01",
    title: "Figure 1",
    description: "storage scaling over the years",
    paper_ref: "§1, Fig 1 (motivation)",
    modes: &[Mode::Analytic],
    params: params![],
    fast: &[],
};

fn run_fig01(_ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let mut out = ExperimentOutput::new();
    for (title, artifact, series) in [
        (
            "(a) Disks per system",
            "fig01a",
            figdata::disks_per_system(),
        ),
        (
            "(b) Capacity per disk",
            "fig01b",
            figdata::capacity_per_disk(),
        ),
    ] {
        w!(out.text, "{title}");
        let years: Vec<u32> = series[0].samples.iter().map(|s| s.year).collect();
        let year_strs: Vec<String> = years.iter().map(std::string::ToString::to_string).collect();
        let mut headers = vec!["series", "unit"];
        headers.extend(year_strs.iter().map(std::string::String::as_str));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut row = vec![s.name.to_string(), s.unit.to_string()];
                row.extend(s.samples.iter().map(|p| format!("{:.1}", p.value)));
                row
            })
            .collect();
        w!(out.text, "{}", ascii_table(&headers, &rows));
        out.artifact(artifact, &series);
    }
    Ok(out)
}

experiment!(Fig01, FIG01_INFO, run_fig01);

// --------------------------------------------------------------- table2

static TABLE2_INFO: ExperimentInfo = ExperimentInfo {
    name: "table2",
    title: "Table 2",
    description: "repair size and available repair bandwidth (single disk / catastrophic pool)",
    paper_ref: "§4.1, Table 2",
    modes: &[Mode::Analytic],
    params: params![],
    fast: &[],
};

fn run_table2(_ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let mut out = ExperimentOutput::new();
    let rows = table2_and_fig6();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.0}", r.disk_size_tb),
                format!("{:.0}", r.disk_bw_mbs),
                format!("{:.0}", r.pool_size_tb),
                format!("{:.0}", r.pool_bw_mbs),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(
            &[
                "scheme",
                "disk TB",
                "disk BW MB/s",
                "pool TB",
                "pool BW MB/s"
            ],
            &table
        )
    );
    w!(
        out.text,
        "paper: C/C 20/40/400/250  C/D 20/264/2400/250  D/C 20/40/400/1363  D/D 20/264/2400/1363"
    );
    out.artifact("table2", &rows);
    Ok(out)
}

experiment!(Table2, TABLE2_INFO, run_table2);

// ---------------------------------------------------------------- fig05

static FIG05_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig05",
    title: "Figure 5",
    description: "MLEC PDL under correlated failure bursts",
    paper_ref: "§4.2, Fig 5",
    modes: &[Mode::Sim],
    params: HEATMAP_PARAMS,
    fast: HEATMAP_FAST,
};

fn run_fig05(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let spec = heatmap_spec(ctx);
    let mut out = ExperimentOutput::new();
    heatmap_grid_line(&mut out, &spec);
    let maps = fig5_mlec_burst_with(&spec, &ctx.runner);
    render_maps(&mut out, &spec, &maps);
    w!(out.text, "paper findings to check against:");
    w!(
        out.text,
        "  F#2: fixed y, more racks => lower PDL (rows get greener rightward)"
    );
    w!(out.text, "  F#3: C/C: PDL=0 for x <= p_n=2 racks");
    w!(
        out.text,
        "  F#4: worst cells at x = p_n+1 = 3 racks, y = 60"
    );
    w!(
        out.text,
        "  F#5-7: C/D and D/C redder than C/C; D/D reddest overall"
    );
    out.artifact("fig05", &maps);
    Ok(out)
}

experiment!(Fig05, FIG05_INFO, run_fig05);

// ---------------------------------------------------------------- fig06

static FIG06_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig06",
    title: "Figure 6",
    description: "repair time per MLEC scheme (R_ALL)",
    paper_ref: "§4.1, Fig 6",
    modes: &[Mode::Analytic],
    params: params![],
    fast: &[],
};

fn run_fig06(_ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let mut out = ExperimentOutput::new();
    let rows = table2_and_fig6();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.1}", r.disk_repair_hours),
                format!("{:.1}", r.pool_repair_hours),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(
            &["scheme", "(a) single disk, h", "(b) catastrophic pool, h"],
            &table
        )
    );
    w!(
        out.text,
        "paper shape: (a) C/C≈D/C≈150h, C/D≈D/D≈25h (6x faster);"
    );
    w!(
        out.text,
        "             (b) C/D slowest (~2.7Kh), D/C fastest (~82h), D/D slightly above C/C"
    );
    out.artifact("fig06", &rows);
    Ok(out)
}

experiment!(Fig06, FIG06_INFO, run_fig06);

// ---------------------------------------------------------------- fig07

static FIG07_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig07",
    title: "Figure 7",
    description: "probability of catastrophic local failure (per system-year)",
    paper_ref: "§4.2, Fig 7",
    modes: &[Mode::Analytic, Mode::Sim],
    params: params![
        (
            "afr_pct",
            F64,
            "1",
            "annual disk failure rate, percent (mode=sim)"
        ),
        (
            "years",
            U64,
            "20",
            "simulated years per pool trial (mode=sim)"
        ),
        ("trials", U64, "64", "pool trials per scheme (mode=sim)"),
        ("seed", U64, "42", "root RNG seed (mode=sim)"),
        (
            "bias",
            Str,
            "auto",
            "degraded-state failure acceleration: auto, 1 (direct), or a multiplier (mode=sim)"
        ),
        (
            "trace",
            Str,
            "",
            "write per-trial JSONL event logs to this path (mode=sim; empty = off)"
        ),
    ],
    fast: &[("trials", "8"), ("years", "25")],
};

fn run_fig07(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    if ctx.mode == Mode::Sim {
        return run_fig07_sim(ctx);
    }
    let mut out = ExperimentOutput::new();
    let rows = fig7_catastrophic_prob();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_value(r.prob_per_year),
                format!("{:.4}%", r.prob_per_year * 100.0),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(&["scheme", "prob/yr", "percent/yr"], &table)
    );
    w!(
        out.text,
        "paper: C/C and D/C below 0.001%/yr; C/D and D/D almost 0.00001%/yr"
    );
    out.artifact("fig07", &rows);
    Ok(out)
}

/// The context's runner options plus the figure-local `trace=` knob: a
/// non-empty value streams per-trial JSONL event logs to that path.
fn runner_with_event_log(ctx: &ExperimentCtx, out: &mut ExperimentOutput) -> HeatmapRunOpts {
    let mut runner = ctx.runner.clone();
    let trace = ctx.str("trace");
    if !trace.is_empty() {
        runner.event_log = Some(std::path::PathBuf::from(trace));
        w!(
            out.text,
            "event log: streaming per-trial JSONL to {trace}\n"
        );
    }
    runner
}

fn run_fig07_sim(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let afr = ctx.f64("afr_pct") / 100.0;
    let years = ctx.u64("years") as f64;
    let trials = ctx.u64("trials");
    let seed = ctx.u64("seed");
    let bias = ctx.bias()?;
    let mut out = ExperimentOutput::new();
    let bias_desc = match bias {
        None => "auto".to_string(),
        Some(b) => format!("{b}"),
    };
    w!(
        out.text,
        "sim mode: AFR {afr}, {trials} pool trials x {years} years per scheme, \
         bias {bias_desc}, root seed {seed}\n"
    );
    let runner = runner_with_event_log(ctx, &mut out);
    let rows = fig7_catastrophic_prob_sim(afr, years, trials, seed, bias, &runner)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{}/{:.0}y", r.events, r.pool_years),
                format!("{:.0}", r.bias),
                format!("{:.1}", r.ess),
                if r.unobserved {
                    format!("<{}", fmt_value(r.rate_per_pool_year))
                } else {
                    fmt_value(r.rate_per_pool_year)
                },
                format!(
                    "[{}, {}]",
                    fmt_value(r.rate_ci_low),
                    fmt_value(r.rate_ci_high)
                ),
                if r.unobserved {
                    format!("<{}", fmt_value(r.prob_per_system_year))
                } else {
                    fmt_value(r.prob_per_system_year)
                },
                fmt_value(r.analytic_prob_per_system_year),
                format!("{:.2e}", r.degraded_frac),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(
            &[
                "scheme",
                "events",
                "bias",
                "ESS",
                "rate/pool-yr",
                "95% CI",
                "sim prob/sys-yr",
                "chain prob/sys-yr",
                "degraded"
            ],
            &table
        )
    );
    w!(
        out.text,
        "reading: rates are likelihood-ratio reweighted (unbiased at any bias); ESS is"
    );
    w!(
        out.text,
        "the effective sample size of the weighted events. `<x` marks a zero-event"
    );
    w!(
        out.text,
        "campaign reporting the Poisson 95% upper bound instead of a point estimate;"
    );
    w!(
        out.text,
        "where events > 0 the chain prediction should sit inside (or near) the CI."
    );
    out.artifact("fig07_sim", &rows);
    Ok(out)
}

experiment!(Fig07, FIG07_INFO, run_fig07);

// ---------------------------------------------------------- fig08/fig09

static FIG08_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig08",
    title: "Figure 8",
    description: "cross-rack repair traffic (TB) per method and scheme",
    paper_ref: "§4.3, Fig 8",
    modes: &[Mode::Analytic, Mode::Sim],
    params: params![
        (
            "afr_pct",
            F64,
            "75",
            "inflated AFR percent so missions observe catastrophes (mode=sim)"
        ),
        (
            "years",
            F64,
            "2",
            "mission length in years per trial (mode=sim)"
        ),
        (
            "trials",
            U64,
            "8",
            "whole-system missions per scheme x method (mode=sim)"
        ),
        ("seed", U64, "42", "root RNG seed (mode=sim)"),
        (
            "method",
            Str,
            "paper",
            "repair methods: `paper` (R_ALL..R_MIN), `all` (adds R_LAYER, R_PIGGY), or a comma-separated label list"
        ),
    ],
    fast: &[("trials", "2"), ("years", "1"), ("method", "all")],
};

fn run_fig08(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    if ctx.mode == Mode::Sim {
        let (cells, mut out) = repair_methods_sim_campaign(ctx)?;
        let table: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.scheme.clone(),
                    c.method.clone(),
                    fmt_value(c.plan_cross_rack_tb),
                    sim_cell(c, c.sim_cross_rack_tb),
                    c.catastrophic_pools.to_string(),
                    c.missions.to_string(),
                ]
            })
            .collect();
        w!(
            out.text,
            "{}",
            ascii_table(
                &[
                    "scheme",
                    "method",
                    "plan TB",
                    "sim TB/pool",
                    "cat pools",
                    "missions"
                ],
                &table
            )
        );
        repair_methods_sim_footer(&mut out);
        out.artifact("fig08_sim", &cells);
        return Ok(out);
    }
    let methods = parse_methods(ctx)?;
    let mut out = ExperimentOutput::new();
    let cells = fig8_fig9_repair_methods_for(&methods);
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|m| {
            let mut row = vec![m.name().to_string()];
            for s in SCHEMES {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == m.name())
                    .expect("cell exists");
                row.push(fmt_value(cell.cross_rack_tb));
            }
            row
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    w!(
        out.text,
        "paper: R_ALL 4400/26400/4400/26400; R_FCO 880 everywhere;"
    );
    w!(out.text, "       R_HYB 880/3.1/880/3.1; R_MIN = R_HYB / 4");
    out.artifact("fig08", &cells);
    Ok(out)
}

experiment!(Fig08, FIG08_INFO, run_fig08);

static FIG09_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig09",
    title: "Figure 9",
    description: "repair time split into network (-N) and local (-L) phases",
    paper_ref: "§4.3, Fig 9",
    modes: &[Mode::Analytic, Mode::Sim],
    params: params![
        (
            "afr_pct",
            F64,
            "75",
            "inflated AFR percent so missions observe catastrophes (mode=sim)"
        ),
        (
            "years",
            F64,
            "2",
            "mission length in years per trial (mode=sim)"
        ),
        (
            "trials",
            U64,
            "8",
            "whole-system missions per scheme x method (mode=sim)"
        ),
        ("seed", U64, "42", "root RNG seed (mode=sim)"),
        (
            "method",
            Str,
            "paper",
            "repair methods: `paper` (R_ALL..R_MIN), `all` (adds R_LAYER, R_PIGGY), or a comma-separated label list"
        ),
    ],
    fast: &[("trials", "2"), ("years", "1"), ("method", "all")],
};

fn run_fig09(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    if ctx.mode == Mode::Sim {
        let (cells, mut out) = repair_methods_sim_campaign(ctx)?;
        let table: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.scheme.clone(),
                    c.method.clone(),
                    fmt_value(c.plan_network_time_h),
                    sim_cell(c, c.sim_network_time_h),
                    c.catastrophic_pools.to_string(),
                    c.missions.to_string(),
                ]
            })
            .collect();
        w!(
            out.text,
            "{}",
            ascii_table(
                &[
                    "scheme",
                    "method",
                    "plan network h",
                    "sim network h/pool",
                    "cat pools",
                    "missions"
                ],
                &table
            )
        );
        repair_methods_sim_footer(&mut out);
        out.artifact("fig09_sim", &cells);
        return Ok(out);
    }
    let methods = parse_methods(ctx)?;
    let mut out = ExperimentOutput::new();
    let cells = fig8_fig9_repair_methods_for(&methods);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scheme.clone(),
                c.method.clone(),
                format!("{:.1}", c.network_time_h),
                format!("{:.1}", c.local_time_h),
                format!("{:.1}", c.network_time_h + c.local_time_h),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(
            &["scheme", "method", "network h", "local h", "total h"],
            &rows
        )
    );
    w!(
        out.text,
        "paper: R_FCO cuts network time 5-30x vs R_ALL; R_HYB trades network for"
    );
    w!(
        out.text,
        "       local time; R_MIN has the least network time but can take longest in total"
    );
    out.artifact("fig09", &cells);
    Ok(out)
}

experiment!(Fig09, FIG09_INFO, run_fig09);

fn sim_cell(c: &RepairMethodSimCell, value: f64) -> String {
    if c.catastrophic_pools == 0 {
        "-".to_string()
    } else {
        fmt_value(value)
    }
}

fn repair_methods_sim_campaign(
    ctx: &ExperimentCtx,
) -> Result<(Vec<RepairMethodSimCell>, ExperimentOutput), ExperimentError> {
    let afr = ctx.f64("afr_pct") / 100.0;
    let years = ctx.f64("years");
    let trials = ctx.u64("trials");
    let seed = ctx.u64("seed");
    let methods = parse_methods(ctx)?;
    let labels: Vec<&str> = methods.iter().map(mlec_sim::RepairMethod::name).collect();
    let mut out = ExperimentOutput::new();
    w!(
        out.text,
        "sim mode: AFR {afr}, {trials} missions x {years} years per scheme x method, \
         root seed {seed}, methods {}\n",
        labels.join(",")
    );
    let cells = fig8_fig9_repair_methods_sim(afr, years, trials, seed, &methods, &ctx.runner)?;
    Ok((cells, out))
}

/// Parse the `method=` parameter of fig08/fig09: `paper` (the four §2.4
/// methods), `all` (paper plus `R_LAYER`/`R_PIGGY`), or a comma-separated
/// list of labels (case-insensitive, deduplicated, order preserved).
/// Unknown labels get a `suggest_among` did-you-mean hint.
fn parse_methods(ctx: &ExperimentCtx) -> Result<Vec<RepairMethod>, ExperimentError> {
    let raw = ctx.str("method");
    match raw {
        "paper" => return Ok(RepairMethod::PAPER.to_vec()),
        "all" => return Ok(RepairMethod::EXTENDED.to_vec()),
        _ => {}
    }
    let mut methods: Vec<RepairMethod> = Vec::new();
    for label in raw.split(',').map(str::trim).filter(|l| !l.is_empty()) {
        let Some(method) = RepairMethod::parse(label) else {
            let mut candidates: Vec<&str> = RepairMethod::EXTENDED
                .iter()
                .map(mlec_sim::RepairMethod::name)
                .collect();
            candidates.extend(["paper", "all"]);
            let hint = match suggest_among(label, &candidates) {
                Some(s) => format!(" — did you mean `{s}`?"),
                None => String::new(),
            };
            return Err(ExperimentError::BadValue {
                name: "method".to_string(),
                value: label.to_string(),
                expected: format!(
                    "`paper`, `all`, or labels from {}{hint}",
                    RepairMethod::EXTENDED.map(|m| m.name()).join(", ")
                ),
            });
        };
        if !methods.contains(&method) {
            methods.push(method);
        }
    }
    if methods.is_empty() {
        return Err(ExperimentError::BadValue {
            name: "method".to_string(),
            value: raw.to_string(),
            expected: "a non-empty method list (e.g. `R_LAYER,R_PIGGY`)".to_string(),
        });
    }
    Ok(methods)
}

fn repair_methods_sim_footer(out: &mut ExperimentOutput) {
    w!(
        out.text,
        "reading: the sim column is the mean measured per-catastrophic-pool value"
    );
    w!(
        out.text,
        "across whole-system missions; it tracks the analytic plan because the"
    );
    w!(
        out.text,
        "simulator charges repairs from that plan — agreement validates the event"
    );
    w!(
        out.text,
        "accounting and the deterministic campaign pipeline, not an independent"
    );
    w!(
        out.text,
        "physical model. `-` marks campaigns that observed no catastrophic pool"
    );
    w!(out.text, "(raise afr_pct, years, or trials).");
}

// ---------------------------------------------------------------- fig10

static FIG10_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig10",
    title: "Figure 10",
    description: "durability (nines) per scheme and repair method",
    paper_ref: "§4.3, Fig 10",
    modes: &[Mode::Analytic, Mode::Sim],
    params: params![
        (
            "afr_pct",
            F64,
            "1",
            "annual disk failure rate, percent (mode=sim)"
        ),
        (
            "years",
            U64,
            "20",
            "simulated years per pool trial (mode=sim)"
        ),
        ("trials", U64, "64", "pool trials per scheme (mode=sim)"),
        ("seed", U64, "42", "root RNG seed (mode=sim)"),
        (
            "bias",
            Str,
            "auto",
            "degraded-state failure acceleration: auto, 1 (direct), or a multiplier (mode=sim)"
        ),
        (
            "require_events",
            U64,
            "0",
            "fail (non-zero exit) unless every scheme observed this many events (mode=sim)"
        ),
        (
            "trace",
            Str,
            "",
            "write per-trial JSONL event logs to this path (mode=sim; empty = off)"
        ),
    ],
    fast: &[("trials", "8"), ("years", "25")],
};

fn run_fig10(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    if ctx.mode == Mode::Sim {
        return run_fig10_sim(ctx);
    }
    let mut out = ExperimentOutput::new();
    let cells = fig10_durability();
    let rows: Vec<Vec<String>> = METHODS
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in SCHEMES {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(format!("{:.1}", cell.nines));
            }
            row
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    w!(
        out.text,
        "paper: R_FCO +0.9-6.6 nines over R_ALL; R_HYB +0.6-4.1; R_MIN +0.1-1.2;"
    );
    w!(
        out.text,
        "       after optimization C/D and D/D best, D/C worst"
    );
    out.artifact("fig10", &cells);
    Ok(out)
}

fn run_fig10_sim(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let afr = ctx.f64("afr_pct") / 100.0;
    let years = ctx.u64("years") as f64;
    let trials = ctx.u64("trials");
    let seed = ctx.u64("seed");
    let bias = ctx.bias()?;
    let require_events = ctx.u64("require_events");
    let mut out = ExperimentOutput::new();
    let bias_desc = match bias {
        None => "auto".to_string(),
        Some(b) => format!("{b}"),
    };
    w!(
        out.text,
        "sim mode: AFR {afr}, stage 1 from {trials} pool trials x {years} years per scheme,"
    );
    w!(
        out.text,
        "bias {bias_desc}, root seed {seed}; cells show nines as sim-stage1 (analytic-stage1);"
    );
    w!(
        out.text,
        "`>=x` marks a zero-event durability lower bound\n"
    );
    let runner = runner_with_event_log(ctx, &mut out);
    let cells = fig10_durability_sim(afr, years, trials, seed, bias, &runner)?;
    let rows: Vec<Vec<String>> = METHODS
        .iter()
        .map(|m| {
            let mut row = vec![m.to_string()];
            for s in SCHEMES {
                let cell = cells
                    .iter()
                    .find(|c| c.scheme == s && c.method == *m)
                    .expect("cell exists");
                row.push(format!(
                    "{}{:.1} ({:.1})",
                    if cell.unobserved { ">=" } else { "" },
                    cell.nines_sim_stage1,
                    cell.nines_analytic_stage1
                ));
            }
            row
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(&["method", "C/C", "C/D", "D/C", "D/D"], &rows)
    );
    for s in SCHEMES {
        if let Some(c) = cells.iter().find(|c| c.scheme == s) {
            w!(
                out.text,
                "  {s}: {} events ({:.3e} weighted, ESS {:.1}) over {:.0} pool-years, \
                 bias {:.0}, degraded {:.2e}{}",
                c.events,
                c.weighted_events,
                c.ess,
                c.pool_years,
                c.bias,
                c.degraded_frac,
                if c.unobserved {
                    " — unobserved: nines are the Poisson 95% lower bound"
                } else {
                    ""
                }
            );
        }
    }
    w!(
        out.text,
        "\nreading: stage-1 rates are likelihood-ratio reweighted, so the sim column is"
    );
    w!(
        out.text,
        "unbiased at any bias; ESS is the effective sample size of the weighted events."
    );
    w!(
        out.text,
        "Zero-event schemes report a durability lower bound (never infinite nines)."
    );
    out.artifact("fig10_sim", &cells);
    if require_events > 0 {
        for s in SCHEMES {
            if let Some(c) = cells.iter().find(|c| c.scheme == s) {
                if c.events < require_events {
                    out.gate_failures.push(format!(
                        "require_events={require_events}: {s} observed only {} events",
                        c.events
                    ));
                }
            }
        }
        if out.gate_failures.is_empty() {
            w!(
                out.text,
                "require_events={require_events}: satisfied for all schemes"
            );
        }
    }
    Ok(out)
}

experiment!(Fig10, FIG10_INFO, run_fig10);

// ---------------------------------------------------------------- fig11

static FIG11_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig11",
    title: "Figure 11",
    description: "(k+p) encoding throughput heatmap (single-core default, threads=N)",
    paper_ref: "§5.1.1, Fig 11",
    modes: &[Mode::Measured],
    params: params![
        ("kmax", U64, "50", "largest data-chunk count"),
        ("pmax", U64, "15", "largest parity count"),
        ("kstep", U64, "4", "k grid step"),
        ("pstep", U64, "2", "p grid step"),
        ("chunk_kb", U64, "128", "chunk size in KiB"),
        ("mb", U64, "64", "minimum MiB encoded per cell"),
        (
            "threads",
            U64,
            "1",
            "worker threads per stripe encode (1 = paper's single-core setup)"
        ),
    ],
    fast: &[("kmax", "10"), ("pmax", "5"), ("mb", "8")],
};

fn run_fig11(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let kmax = ctx.u64("kmax") as usize;
    let pmax = ctx.u64("pmax") as usize;
    let kstep = (ctx.u64("kstep") as usize).max(1);
    let pstep = (ctx.u64("pstep") as usize).max(1);
    let chunk = ctx.u64("chunk_kb") as usize * 1024;
    let min_bytes = ctx.u64("mb") as usize * 1024 * 1024;
    let threads = ctx.u64("threads") as usize;

    let ks: Vec<usize> = (2..=kmax).step_by(kstep).collect();
    let ps: Vec<usize> = (1..=pmax).step_by(pstep).collect();
    let mut out = ExperimentOutput::new();
    w!(
        out.text,
        "grid: k in {ks:?}\n      p in {ps:?}\n      threads = {threads} (kernel: {})\n",
        mlec_gf::simd::kernel_name()
    );

    let cells = fig11_encoding_throughput(&ks, &ps, chunk, min_bytes, threads);

    // Render the heatmap rows (p down the side, k across).
    {
        use std::fmt::Write as _;
        let _ = write!(out.text, "{:>6}", "p\\k");
        for &k in &ks {
            let _ = write!(out.text, "{k:>7}");
        }
        w!(out.text);
        for &p in ps.iter().rev() {
            let _ = write!(out.text, "{p:>6}");
            for &k in &ks {
                let cell = cells.iter().find(|c| c.k == k && c.p == p).unwrap();
                let _ = write!(out.text, "{:>7.0}", cell.mb_per_s);
            }
            w!(out.text);
        }
    }
    w!(
        out.text,
        "\n(values: MB/s of data encoded; paper shape: falls with larger k and p)"
    );
    let max = cells.iter().map(|c| c.mb_per_s).fold(0.0f64, f64::max);
    let min = cells
        .iter()
        .map(|c| c.mb_per_s)
        .fold(f64::INFINITY, f64::min);
    w!(
        out.text,
        "range: {min:.0} .. {max:.0} MB/s ({:.1}x spread)",
        max / min
    );
    out.artifact("fig11", &cells);
    Ok(out)
}

experiment!(Fig11, FIG11_INFO, run_fig11);

// ---------------------------------------------------------- fig12/fig15

fn tradeoff_tables(
    out: &mut ExperimentOutput,
    points: &[mlec_analysis::tradeoff::TradeoffPoint],
    families: &[&str],
) {
    for family in families {
        let mut fam: Vec<_> = points.iter().filter(|p| &p.family == family).collect();
        fam.sort_by(|a, b| a.durability_nines.total_cmp(&b.durability_nines));
        w!(out.text, "series {family} ({} configs):", fam.len());
        let rows: Vec<Vec<String>> = fam
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.1}", p.durability_nines),
                    format!("{:.0}", p.throughput_mbs),
                    format!("{:.0}%", p.overhead * 100.0),
                ]
            })
            .collect();
        w!(
            out.text,
            "{}",
            ascii_table(&["config", "nines", "MB/s", "overhead"], &rows)
        );
    }
}

static FIG12_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig12",
    title: "Figure 12",
    description: "MLEC vs SLEC durability/throughput tradeoff (~30% overhead)",
    paper_ref: "§5.1, Fig 12",
    modes: &[Mode::Analytic, Mode::Sim],
    params: params![
        (
            "mb",
            U64,
            "32",
            "MiB encoded while calibrating the kernel cost model"
        ),
        (
            "threads",
            U64,
            "1",
            "worker threads for the calibration encode (models an N-core encoder)"
        ),
        (
            "failures",
            U64,
            "48",
            "burst stress cell: failed disks (mode=sim)"
        ),
        (
            "racks",
            U64,
            "5",
            "burst stress cell: affected racks (mode=sim)"
        ),
        (
            "rel_err",
            F64,
            "0.1",
            "adaptive stop: target relative std error (mode=sim)"
        ),
        (
            "min_samples",
            U64,
            "200",
            "minimum conditional-MC samples per campaign (mode=sim)"
        ),
        (
            "samples",
            U64,
            "20000",
            "conditional-MC sample budget per campaign (mode=sim)"
        ),
        ("seed", U64, "42", "root RNG seed (mode=sim)"),
    ],
    fast: &[("rel_err", "0.3"), ("samples", "2000")],
};

static FIG12_FAMILIES: &[&str] = &["C/C", "C/D", "Loc-Cp-S", "Loc-Dp-S", "Net-Cp-S", "Net-Dp-S"];

fn run_fig12(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let mb = ctx.u64("mb") as usize * 1024 * 1024;
    let threads = ctx.u64("threads") as usize;
    let model = ThroughputModel::calibrate_threads(128 * 1024, mb, threads);
    let mut out = ExperimentOutput::new();
    w!(
        out.text,
        "calibrated kernel rate: {:.0} MB/s of multiply work ({threads} thread(s), kernel: {})\n",
        model.rate_mb_per_s,
        mlec_gf::simd::kernel_name()
    );
    if ctx.mode == Mode::Sim {
        let failures = ctx.u64("failures") as u32;
        let racks = ctx.u64("racks") as u32;
        let rel_err = ctx.f64("rel_err");
        let (points, checks) = fig12_mlec_vs_slec_sim(
            &model,
            failures,
            racks,
            rel_err,
            ctx.u64("min_samples"),
            ctx.u64("samples"),
            ctx.u64("seed"),
            &ctx.runner,
        )?;
        tradeoff_tables(&mut out, &points, FIG12_FAMILIES);
        w!(
            out.text,
            "burst cross-check: conditional-MC PDL of a ({failures} disks, {racks} racks) burst,"
        );
        w!(
            out.text,
            "adaptive stop at rel_err={rel_err} (paper-flagship config per family):"
        );
        let rows: Vec<Vec<String>> = checks
            .iter()
            .map(|r| {
                vec![
                    r.family.clone(),
                    r.label.clone(),
                    fmt_value(r.burst_pdl),
                    fmt_value(r.ci_half_width),
                    r.trials.to_string(),
                    format!("{:.3}", r.rel_err),
                ]
            })
            .collect();
        w!(
            out.text,
            "{}",
            ascii_table(
                &[
                    "family",
                    "config",
                    "burst PDL",
                    "±95% CI",
                    "trials",
                    "rel err"
                ],
                &rows
            )
        );
        w!(
            out.text,
            "reading: the MLEC rows should sit orders of magnitude below the SLEC rows"
        );
        w!(
            out.text,
            "at the same stress cell — the Fig 5 vs Fig 13 contrast, measured to a"
        );
        w!(out.text, "precision target instead of a fixed budget.");
        out.artifact("fig12", &points);
        out.artifact("fig12_sim", &checks);
        return Ok(out);
    }
    let points = fig12_mlec_vs_slec(&model);
    tradeoff_tables(&mut out, &points, FIG12_FAMILIES);
    w!(
        out.text,
        "paper F#2: above ~20 nines, MLEC sustains much higher throughput than SLEC"
    );
    out.artifact("fig12", &points);
    Ok(out)
}

experiment!(Fig12, FIG12_INFO, run_fig12);

static FIG15_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig15",
    title: "Figure 15",
    description: "MLEC C/D vs LRC-Dp durability/throughput tradeoff",
    paper_ref: "§5.2, Fig 15",
    modes: &[Mode::Analytic, Mode::Sim],
    params: params![
        (
            "mb",
            U64,
            "32",
            "MiB encoded while calibrating the kernel cost model"
        ),
        (
            "threads",
            U64,
            "1",
            "worker threads for the calibration encode (models an N-core encoder)"
        ),
        (
            "rel_err",
            F64,
            "0.1",
            "adaptive stop: target relative std error (mode=sim)"
        ),
        (
            "min_samples",
            U64,
            "200",
            "minimum rank tests per LRC config (mode=sim)"
        ),
        (
            "samples",
            U64,
            "20000",
            "rank-test budget per LRC config (mode=sim)"
        ),
        ("seed", U64, "42", "root RNG seed (mode=sim)"),
    ],
    fast: &[("rel_err", "0.3"), ("samples", "1000")],
};

fn run_fig15(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let mb = ctx.u64("mb") as usize * 1024 * 1024;
    let threads = ctx.u64("threads") as usize;
    let model = ThroughputModel::calibrate_threads(128 * 1024, mb, threads);
    let mut out = ExperimentOutput::new();
    if ctx.mode == Mode::Sim {
        let rel_err = ctx.f64("rel_err");
        let (points, rows) = fig15_mlec_vs_lrc_sim(
            &model,
            rel_err,
            ctx.u64("min_samples"),
            ctx.u64("samples"),
            ctx.u64("seed"),
            &ctx.runner,
        )?;
        tradeoff_tables(&mut out, &points, &["C/D", "LRC-Dp"]);
        w!(
            out.text,
            "sampled LRC undecodability (exact rank tests, r+2 uniform erasures, \
             adaptive stop at rel_err={rel_err}):"
        );
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    fmt_value(r.analytic),
                    fmt_value(r.sampled),
                    r.trials.to_string(),
                    format!("{:.3}", r.rel_err),
                ]
            })
            .collect();
        w!(
            out.text,
            "{}",
            ascii_table(
                &["config", "analytic", "sampled", "trials", "rel err"],
                &table
            )
        );
        w!(
            out.text,
            "reading: the LRC series above uses the *sampled* undecodability, so its"
        );
        w!(
            out.text,
            "nines are measured, not assumed; sampled vs analytic agreement validates"
        );
        w!(
            out.text,
            "the closed-form thinning used by the fast analytic mode."
        );
        out.artifact("fig15", &points);
        out.artifact("fig15_sim", &rows);
        return Ok(out);
    }
    let points = fig15_mlec_vs_lrc(&model);
    tradeoff_tables(&mut out, &points, &["C/D", "LRC-Dp"]);
    w!(
        out.text,
        "paper F#1: MLEC reaches high durability with higher encoding throughput than LRC"
    );
    out.artifact("fig15", &points);
    Ok(out)
}

experiment!(Fig15, FIG15_INFO, run_fig15);

// ---------------------------------------------------------- fig13/fig16

static FIG13_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig13",
    title: "Figure 13",
    description: "SLEC PDL under correlated failure bursts, (7+3)",
    paper_ref: "§5.1.3, Fig 13",
    modes: &[Mode::Sim],
    params: HEATMAP_PARAMS,
    fast: HEATMAP_FAST,
};

fn run_fig13(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let spec = heatmap_spec(ctx);
    let mut out = ExperimentOutput::new();
    heatmap_grid_line(&mut out, &spec);
    let maps = fig13_slec_burst_with(&spec, SlecParams::new(7, 3), &ctx.runner);
    render_maps(&mut out, &spec, &maps);
    w!(
        out.text,
        "paper: local SLEC susceptible to localized bursts (left edge red),"
    );
    w!(
        out.text,
        "       network SLEC susceptible to scattered bursts (diagonal red),"
    );
    w!(
        out.text,
        "       Dp variants worse than Cp in their respective failure regimes"
    );
    out.artifact("fig13", &maps);
    Ok(out)
}

experiment!(Fig13, FIG13_INFO, run_fig13);

static FIG16_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig16",
    title: "Figure 16",
    description: "LRC-Dp (14,2,4) PDL under correlated failure bursts",
    paper_ref: "§5.2.3, Fig 16",
    modes: &[Mode::Sim],
    params: HEATMAP_PARAMS,
    fast: HEATMAP_FAST,
};

fn run_fig16(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let spec = heatmap_spec(ctx);
    let mut out = ExperimentOutput::new();
    heatmap_grid_line(&mut out, &spec);
    let map = fig16_lrc_burst_with(&spec, LrcParams::paper_default(), &ctx.runner);
    render_maps(&mut out, &spec, std::slice::from_ref(&map));
    w!(
        out.text,
        "paper: pattern similar to Net-Dp SLEC — susceptible to highly scattered bursts"
    );
    out.artifact("fig16", &map);
    Ok(out)
}

experiment!(Fig16, FIG16_INFO, run_fig16);

// --------------------------------------------------------------- sec514

static SEC514_INFO: ExperimentInfo = ExperimentInfo {
    name: "sec514",
    title: "Sections 5.1.4 & 5.2.4",
    description: "repair network traffic: SLEC vs LRC vs MLEC",
    paper_ref: "§5.1.4 / §5.2.4",
    modes: &[Mode::Analytic],
    params: params![],
    fast: &[],
};

fn run_sec514(_ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let mut out = ExperimentOutput::new();
    let rows = repair_traffic_comparison();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                fmt_value(r.tb_per_day),
                fmt_value(r.tb_per_year),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(&["system", "TB/day", "TB/year"], &table)
    );
    w!(
        out.text,
        "paper: network SLEC needs hundreds of TB/day; LRC less but still substantial;"
    );
    w!(
        out.text,
        "       MLEC needs a few TB every thousands of years"
    );
    out.artifact("sec514_sec524_traffic", &rows);
    Ok(out)
}

experiment!(Sec514, SEC514_INFO, run_sec514);

// ------------------------------------------------------------ ablations

static ABLATIONS_INFO: ExperimentInfo = ExperimentInfo {
    name: "ablations",
    title: "Ablations",
    description: "detection time, throttle, AFR, and spare policy sweeps",
    paper_ref: "§5.2.2 / §3 (beyond the paper's figures)",
    modes: &[Mode::Analytic],
    params: params![],
    fast: &[],
};

fn ablation_table(
    out: &mut ExperimentOutput,
    title: &str,
    unit: &str,
    points: &[mlec_analysis::ablation::AblationPoint],
) {
    w!(out.text, "--- {title}");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.series.clone(), fmt_value(p.x), format!("{:.1}", p.value)])
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(&["series", unit, "nines"], &rows)
    );
}

fn run_ablations(_ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    use mlec_analysis::ablation::{
        afr_sweep, detection_time_sweep, spare_policy_comparison, throttle_sweep,
    };
    let mut out = ExperimentOutput::new();

    let cd = MlecDeployment::paper_default(MlecScheme::CD);
    let detection = detection_time_sweep(
        &cd,
        LrcParams::paper_default(),
        &[1.0, 0.5, 0.25, 1.0 / 12.0, 1.0 / 60.0],
    );
    ablation_table(
        &mut out,
        "failure detection time (h) vs durability (paper §5.2.2)",
        "hours",
        &detection,
    );

    let cc = MlecDeployment::paper_default(MlecScheme::CC);
    let throttle = throttle_sweep(&cc, &[0.05, 0.1, 0.2, 0.4, 0.8]);
    ablation_table(
        &mut out,
        "repair bandwidth throttle fraction (paper fixes 0.2)",
        "frac",
        &throttle,
    );

    let afr = afr_sweep(&cc, &[0.002, 0.005, 0.01, 0.02, 0.05]);
    ablation_table(
        &mut out,
        "annual disk failure rate (paper fixes 0.01)",
        "AFR",
        &afr,
    );

    let (serial, parallel) = spare_policy_comparison(&cc);
    w!(
        out.text,
        "--- clustered spare-rebuild policy (catastrophic events / pool-year)"
    );
    w!(
        out.text,
        "  serial hot spare (deployed reality): {}",
        fmt_value(serial)
    );
    w!(
        out.text,
        "  idealized parallel spares:           {}",
        fmt_value(parallel)
    );
    w!(
        out.text,
        "  -> spare parallelism buys {:.1}x; declustering buys far more (Fig 7)",
        serial / parallel
    );

    out.artifact("ablation_detection", &detection);
    out.artifact("ablation_throttle", &throttle);
    out.artifact("ablation_afr", &afr);
    Ok(out)
}

experiment!(Ablations, ABLATIONS_INFO, run_ablations);

// -------------------------------------------------------- paper_summary

static PAPER_SUMMARY_INFO: ExperimentInfo = ExperimentInfo {
    name: "paper_summary",
    title: "Reproduction summary",
    description: "paper headline numbers vs this repository",
    paper_ref: "whole evaluation (fast analytic paths)",
    modes: &[Mode::Analytic],
    params: params![],
    fast: &[],
};

fn run_paper_summary(_ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    use mlec_sim::{traffic, SimConfig};
    let mut out = ExperimentOutput::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add = |exp: &str, what: &str, paper: &str, ours: String| {
        rows.push(vec![exp.into(), what.into(), paper.into(), ours]);
    };

    let t2 = table2_and_fig6();
    let get = |s: &str| t2.iter().find(|r| r.scheme == s).unwrap();
    add(
        "Table 2",
        "C/D single-disk repair BW",
        "264 MB/s",
        format!("{:.0} MB/s", get("C/D").disk_bw_mbs),
    );
    add(
        "Table 2",
        "D/C pool repair BW",
        "1363 MB/s",
        format!("{:.0} MB/s", get("D/C").pool_bw_mbs),
    );
    add(
        "Fig 6a",
        "single-disk repair speedup */D vs */C",
        "~6x",
        format!(
            "{:.1}x",
            get("C/C").disk_repair_hours / get("C/D").disk_repair_hours
        ),
    );
    add(
        "Fig 6b",
        "pool repair speedup D/C vs C/C",
        "~5x",
        format!(
            "{:.1}x",
            get("C/C").pool_repair_hours / get("D/C").pool_repair_hours
        ),
    );

    let f7 = fig7_catastrophic_prob();
    let p = |s: &str| f7.iter().find(|r| r.scheme == s).unwrap().prob_per_year;
    add(
        "Fig 7",
        "catastrophic prob, */C",
        "< 0.001%/yr",
        format!("{:.4}%/yr", p("C/C") * 100.0),
    );
    add(
        "Fig 7",
        "catastrophic prob, */D",
        "~0.00001%/yr",
        format!("{:.5}%/yr", p("C/D") * 100.0),
    );

    let f8 = fig8_fig9_repair_methods();
    let traffic_of = |s: &str, m: &str| {
        f8.iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .cross_rack_tb
    };
    add(
        "Fig 8",
        "R_ALL traffic on C/D",
        "26,400 TB",
        format!("{:.0} TB", traffic_of("C/D", "R_ALL")),
    );
    add(
        "Fig 8",
        "R_FCO traffic (all schemes)",
        "880 TB",
        format!("{:.0} TB", traffic_of("C/C", "R_FCO")),
    );
    add(
        "Fig 8",
        "R_HYB traffic on */D",
        "3.1 TB",
        format!("{:.1} TB", traffic_of("C/D", "R_HYB")),
    );
    add(
        "Fig 8",
        "R_MIN vs R_HYB reduction",
        ">= 4x",
        format!(
            "{:.1}x",
            traffic_of("C/C", "R_HYB") / traffic_of("C/C", "R_MIN")
        ),
    );

    let f9_net = |s: &str, m: &str| {
        f8.iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .network_time_h
    };
    add(
        "Fig 9",
        "R_FCO network-time cut vs R_ALL",
        "5-30x",
        format!(
            "{:.0}x-{:.0}x",
            f9_net("C/C", "R_ALL") / f9_net("C/C", "R_FCO"),
            f9_net("C/D", "R_ALL") / f9_net("C/D", "R_FCO")
        ),
    );

    let f10 = fig10_durability();
    let nines_of = |s: &str, m: &str| {
        f10.iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .nines
    };
    let fco_gains: Vec<f64> = SCHEMES
        .iter()
        .map(|s| nines_of(s, "R_FCO") - nines_of(s, "R_ALL"))
        .collect();
    add(
        "Fig 10",
        "R_FCO durability gain",
        "+0.9-6.6 nines",
        format!(
            "+{:.1}-{:.1} nines",
            fco_gains.iter().cloned().fold(f64::NAN, f64::min),
            fco_gains.iter().cloned().fold(f64::NAN, f64::max)
        ),
    );
    let min_gains: Vec<f64> = SCHEMES
        .iter()
        .map(|s| nines_of(s, "R_MIN") - nines_of(s, "R_HYB"))
        .collect();
    add(
        "Fig 10",
        "R_MIN durability gain",
        "+0.1-1.2 nines",
        format!(
            "+{:.1}-{:.1} nines",
            min_gains.iter().cloned().fold(f64::NAN, f64::min),
            min_gains.iter().cloned().fold(f64::NAN, f64::max)
        ),
    );
    add(
        "Fig 10",
        "best / worst scheme with R_MIN",
        "C/D,D/D / D/C",
        format!(
            "{:.1},{:.1} / {:.1} nines",
            nines_of("C/D", "R_MIN"),
            nines_of("D/D", "R_MIN"),
            nines_of("D/C", "R_MIN")
        ),
    );

    let g = Geometry::paper_default();
    let c = SimConfig::paper_default();
    add(
        "§5.1.4",
        "(7+3) net-SLEC repair traffic",
        "100s of TB/day",
        format!(
            "{:.0} TB/day",
            traffic::net_slec_daily_traffic(&g, &c, 7).to_tb()
        ),
    );
    let mlec_yearly = traffic::mlec_yearly_traffic(
        &MlecDeployment::paper_default(MlecScheme::CC),
        RepairMethod::Min,
        mlec_units::Rate::from_per_year(p("C/C")),
    )
    .to_tb();
    add(
        "§5.1.4",
        "MLEC repair traffic",
        "few TB / 1000s of years",
        format!("{mlec_yearly:.1e} TB/yr"),
    );

    w!(
        out.text,
        "{}",
        ascii_table(&["experiment", "quantity", "paper", "ours"], &rows)
    );
    w!(
        out.text,
        "Full per-figure details: EXPERIMENTS.md; regeneration commands in README.md."
    );
    Ok(out)
}

experiment!(PaperSummary, PAPER_SUMMARY_INFO, run_paper_summary);

// ----------------------------------------------------------- validation

struct ValidationRow {
    scheme: String,
    afr: f64,
    direct_loss_runs: u64,
    total_runs: u64,
    direct_pdl: f64,
    wilson_low: f64,
    wilson_high: f64,
    splitting_pdl: f64,
    catastrophic_pools_simulated: u64,
}

impl_to_json!(ValidationRow {
    scheme,
    afr,
    direct_loss_runs,
    total_runs,
    direct_pdl,
    wilson_low,
    wilson_high,
    splitting_pdl,
    catastrophic_pools_simulated,
});

static VALIDATION_INFO: ExperimentInfo = ExperimentInfo {
    name: "validation",
    title: "Validation",
    description: "direct system simulation vs splitting estimator at inflated AFR",
    paper_ref: "§6.2 (methodology cross-validation)",
    modes: &[Mode::Sim],
    params: params![
        (
            "afr_pct",
            F64,
            "75",
            "inflated AFR percent (data loss must be observable)"
        ),
        ("years", F64, "2", "mission length in years per run"),
        ("runs", U64, "40", "whole-system runs per scheme"),
        ("seed", U64, "42", "root RNG seed"),
    ],
    fast: &[("runs", "4")],
};

fn run_validation(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    use mlec_analysis::splitting::{stage1_analytic, stage2_pdl};
    use mlec_sim::failure::FailureModel;
    use mlec_sim::system_sim::SystemSimOptions;
    use mlec_sim::trials::SystemTrial;

    let afr = ctx.f64("afr_pct") / 100.0;
    let years = ctx.f64("years");
    let runs = ctx.u64("runs");
    let seed = ctx.u64("seed");
    let mut out = ExperimentOutput::new();
    w!(
        out.text,
        "AFR {afr}, mission {years} years, {runs} runs per scheme, root seed {seed}\n"
    );

    let config_hash = Json::obj(vec![
        ("afr", Json::F64(afr)),
        ("years", Json::F64(years)),
        ("runs", Json::U64(runs)),
    ])
    .fingerprint();

    let mut rows = Vec::new();
    for scheme in MlecScheme::ALL {
        let mut dep = MlecDeployment::paper_default(scheme);
        dep.config.afr = afr;
        let model = FailureModel::Exponential { afr };
        let trial = SystemTrial {
            dep: &dep,
            model: &model,
            strategy: RepairMethod::Fco.strategy(),
            years,
            opts: SystemSimOptions::default(),
            event_log: None,
            log_label: "",
        };
        let label = format!("validation/{}", scheme.name().replace('/', ""));
        let mut spec = RunSpec::new(&label, seed, StopRule::fixed(runs))
            .threads(ctx.runner.threads)
            .config_hash(config_hash);
        if let Some(dir) = &ctx.runner.manifest_dir {
            spec = spec.manifest(dir.join(format!("{}.jsonl", label.replace('/', "-"))));
        }
        let report = mlec_runner::run(&trial, &spec)?;
        if report.resumed_trials > 0 {
            w!(
                out.text,
                "  [{label}: resumed {} of {} trials from manifest]",
                report.resumed_trials,
                report.trials
            );
        }

        let s1 = stage1_analytic(&dep);
        let splitting_pdl = stage2_pdl(
            &dep,
            RepairMethod::Fco,
            &s1,
            mlec_units::Duration::from_years(years),
        );
        let summary = report.summary;
        rows.push(ValidationRow {
            scheme: scheme.name(),
            afr,
            direct_loss_runs: report.acc.loss.hits(),
            total_runs: report.trials,
            direct_pdl: summary.mean,
            wilson_low: summary.ci_low,
            wilson_high: summary.ci_high,
            splitting_pdl,
            catastrophic_pools_simulated: report.acc.catastrophic_pools,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{}/{}", r.direct_loss_runs, r.total_runs),
                fmt_value(r.direct_pdl),
                format!(
                    "[{}, {}]",
                    fmt_value(r.wilson_low),
                    fmt_value(r.wilson_high)
                ),
                fmt_value(r.splitting_pdl),
                format!("{:.1}", nines(r.splitting_pdl.max(1e-300))),
                r.catastrophic_pools_simulated.to_string(),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(
            &[
                "scheme",
                "losses",
                "direct PDL",
                "wilson 95%",
                "splitting PDL",
                "nines",
                "cat pools"
            ],
            &table
        )
    );
    w!(
        out.text,
        "reading: where direct PDL is measurable but < 1, splitting should agree within"
    );
    w!(
        out.text,
        "an order of magnitude; splitting saturates to 1 earlier because its Poisson"
    );
    w!(
        out.text,
        "overlap formula is an upper bound outside the rare-event regime it serves"
    );
    w!(
        out.text,
        "(at the paper's 1% AFR, overlaps are ~20 orders rarer and the bound is tight)."
    );
    out.artifact("validation_direct_sim", &rows);
    Ok(out)
}

experiment!(Validation, VALIDATION_INFO, run_validation);

// ---------------------------------------------------------------- trace

static TRACE_INFO: ExperimentInfo = ExperimentInfo {
    name: "trace",
    title: "Trace tools",
    description: "synthesize, analyze, and replay a failure trace",
    paper_ref: "§6.1 (trace-driven fault simulation)",
    modes: &[Mode::Sim],
    params: params![
        (
            "afr_pct",
            F64,
            "1",
            "background AFR percent of the synthesized trace"
        ),
        (
            "bursts_per_year_x10",
            U64,
            "10",
            "correlated bursts per year, times 10"
        ),
        ("burst_size", U64, "60", "disks per burst"),
        ("burst_racks", U64, "1", "racks a burst concentrates on"),
        ("years", F64, "5", "trace length in years"),
        ("seed", U64, "42", "trace synthesis seed"),
        (
            "csv",
            Str,
            "",
            "also write the synthesized trace CSV to this path ('' = don't)"
        ),
    ],
    fast: &[("years", "2")],
};

fn run_trace(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    use mlec_sim::system_sim::simulate_system_trace;
    use mlec_sim::trace::{detect_bursts, synthesize, TraceSpec};

    let spec = TraceSpec {
        background_afr: ctx.f64("afr_pct") / 100.0,
        bursts_per_year: ctx.u64("bursts_per_year_x10") as f64 / 10.0,
        burst_size: ctx.u64("burst_size") as u32,
        burst_racks: ctx.u64("burst_racks") as u32,
        years: ctx.f64("years"),
    };
    let geometry = Geometry::paper_default();
    let trace = synthesize(&geometry, &spec, ctx.u64("seed"));
    let mut out = ExperimentOutput::new();

    w!(
        out.text,
        "synthesized {} failures over {:.1} years (empirical AFR {:.3}%)\n",
        trace.len(),
        spec.years,
        trace.empirical_afr(&geometry) * 100.0
    );

    let bursts = detect_bursts(&trace, 0.5, 5);
    w!(
        out.text,
        "detected {} bursts (>= 5 failures within 30 min):",
        bursts.len()
    );
    for (start, disks) in bursts.iter().take(10) {
        let racks: std::collections::BTreeSet<u32> =
            disks.iter().map(|&d| geometry.rack_of(d)).collect();
        w!(
            out.text,
            "  t={start:>9.1}h  {} disks across {} racks",
            disks.len(),
            racks.len()
        );
    }

    w!(
        out.text,
        "\nreplaying the trace against each scheme (R_MIN):"
    );
    let rows: Vec<Vec<String>> = MlecScheme::ALL
        .into_iter()
        .map(|scheme| {
            let dep = MlecDeployment::paper_default(scheme);
            let r = simulate_system_trace(&dep, &trace, RepairMethod::Min, 1);
            vec![
                scheme.name(),
                r.catastrophic_pools.to_string(),
                r.data_loss_events.to_string(),
                format!("{:.2}", r.cross_rack_traffic_tb),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(
            &[
                "scheme",
                "catastrophic pools",
                "data losses",
                "cross-rack TB"
            ],
            &rows
        )
    );

    let csv = ctx.str("csv");
    if !csv.is_empty() {
        std::fs::write(csv, trace.to_csv())?;
        w!(out.text, "trace written to {csv}");
    }
    Ok(out)
}

experiment!(TraceTools, TRACE_INFO, run_trace);

// ---------------------------------------------------------------- store

static STORE_BENCH_INFO: ExperimentInfo = ExperimentInfo {
    name: "store_bench",
    title: "Store bench",
    description: "trace-driven object-store replay: rebuild vs foreground tail latency",
    paper_ref: "§3 (bandwidth model), §5 (repair/foreground interference)",
    modes: &[Mode::Sim],
    params: params![
        ("ops", U64, "1000000", "trace operations to replay"),
        (
            "objects",
            U64,
            "4096",
            "distinct objects, preloaded at version 0 before the trace"
        ),
        (
            "zipf",
            F64,
            "1.0",
            "Zipf(s) popularity skew of the object draw"
        ),
        ("put_pct", U64, "10", "percent of ops that are puts"),
        ("delete_pct", U64, "0", "percent of ops that are deletes"),
        (
            "ops_per_sec",
            U64,
            "50000",
            "trace arrival rate in virtual time"
        ),
        (
            "kill_at",
            U64,
            "0",
            "inject the failure when this op index is reached (0 = never)"
        ),
        (
            "kill_racks",
            U64,
            "1",
            "whole racks killed at the injection"
        ),
        (
            "kill_disks",
            U64,
            "0",
            "extra disks killed in the next surviving rack"
        ),
        ("batch", U64, "1024", "ops prepared per parallel batch"),
        (
            "shards",
            U64,
            "0",
            "apply-phase rack shards: 0 = monolithic serial apply, N >= 1 = epoch-sharded apply on N clock-domain shards (bit-identical output)"
        ),
        (
            "verify_every",
            U64,
            "64",
            "verify read-back bytes on every Nth op (0 = final sweep only)"
        ),
        (
            "seed",
            U64,
            "42",
            "root seed for trace and payload derivation"
        ),
        ("backend", Str, "mem", "chunk backend: `mem` or `file`"),
        (
            "dir",
            Str,
            "",
            "chunk directory for backend=file ('' = <out>/store_chunks)"
        ),
        (
            "oplog",
            Str,
            "",
            "write the deterministic JSONL op log to this path ('' = don't)"
        ),
        (
            "trace",
            Str,
            "",
            "replay this trace file instead of synthesizing ('' = synthesize)"
        ),
        (
            "require_degraded",
            U64,
            "0",
            "1 = fail unless the kill caused degraded reads and a completed rebuild"
        ),
        (
            "timing",
            U64,
            "0",
            "1 = also report wall-clock replay throughput (reporting only)"
        ),
    ],
    fast: &[
        ("ops", "2000"),
        ("objects", "256"),
        ("kill_at", "600"),
        ("verify_every", "16"),
        ("shards", "2"),
    ],
};

fn store_err(e: mlec_store::StoreError) -> ExperimentError {
    ExperimentError::Io(std::io::Error::other(e.to_string()))
}

fn store_bench_spec(ctx: &ExperimentCtx) -> Result<mlec_store::BenchSpec, ExperimentError> {
    use mlec_store::{BackendChoice, BenchSpec, KillSpec, LoadSpec, StoreConfig};

    let backend = match ctx.str("backend") {
        "mem" => BackendChoice::Mem,
        "file" => {
            let dir = ctx.str("dir");
            let dir = if dir.is_empty() {
                ctx.out_dir.join("store_chunks")
            } else {
                std::path::PathBuf::from(dir)
            };
            BackendChoice::File(dir)
        }
        other => {
            return Err(ExperimentError::BadValue {
                name: "backend".to_string(),
                value: other.to_string(),
                expected: "`mem` or `file`".to_string(),
            })
        }
    };
    let kill_at = ctx.u64("kill_at");
    let trace = ctx.str("trace");
    let trace_text = if trace.is_empty() {
        None
    } else {
        Some(std::fs::read_to_string(trace)?)
    };
    let oplog = ctx.str("oplog");
    Ok(BenchSpec {
        store: StoreConfig::small_test(),
        load: LoadSpec {
            ops: ctx.u64("ops"),
            objects: ctx.u64("objects"),
            zipf_s: ctx.f64("zipf"),
            put_pct: ctx.u64("put_pct") as u32,
            delete_pct: ctx.u64("delete_pct") as u32,
            ops_per_sec: ctx.u64("ops_per_sec"),
        },
        kill: (kill_at > 0).then(|| KillSpec {
            at_op: kill_at,
            racks: ctx.u64("kill_racks") as u32,
            disks: ctx.u64("kill_disks") as u32,
        }),
        threads: ctx.runner.threads.max(1),
        shards: ctx.u64("shards") as usize,
        batch: ctx.u64("batch").max(1) as usize,
        verify_every: ctx.u64("verify_every"),
        seed: ctx.u64("seed"),
        backend,
        oplog: (!oplog.is_empty()).then(|| std::path::PathBuf::from(oplog)),
        trace_text,
        timing: ctx.u64("timing") != 0,
    })
}

#[allow(clippy::too_many_lines)]
fn run_store_bench_exp(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let spec = store_bench_spec(ctx)?;
    let report = mlec_store::run_store_bench(&spec).map_err(store_err)?;
    let mut out = ExperimentOutput::new();

    let cfg = &spec.store;
    w!(
        out.text,
        "({}+{})/({}+{}) {} over {} racks, {} objects × {} B, seed {}",
        cfg.code.kn,
        cfg.code.pn,
        cfg.code.kl,
        cfg.code.pl,
        cfg.scheme.name(),
        cfg.geometry.racks,
        spec.load.objects,
        cfg.payload_bytes(),
        spec.seed
    );
    w!(
        out.text,
        "{} ops replayed: {} puts, {} gets, {} deletes, {} misses",
        report.ops,
        report.puts,
        report.gets,
        report.deletes,
        report.misses
    );
    w!(
        out.text,
        "verified bit-exact: {} inline + {} final sweep; cache hit rate {:.1}%\n",
        report.verified_inline,
        report.verified_final,
        report.cache_hit_rate * 100.0
    );

    let rows: Vec<Vec<String>> = report
        .phases
        .iter()
        .map(|p| {
            vec![
                p.phase.to_string(),
                p.count.to_string(),
                format!("{:.0}", p.mean_us),
                p.p50_us.to_string(),
                p.p99_us.to_string(),
                p.p999_us.to_string(),
                p.max_us.to_string(),
            ]
        })
        .collect();
    w!(
        out.text,
        "{}",
        ascii_table(
            &["phase", "ops", "mean µs", "p50", "p99", "p999", "max"],
            &rows
        )
    );

    if let Some(kill_us) = report.kill_time_us {
        w!(
            out.text,
            "\nfailure injected at t={kill_us} µs: {} chunks lost",
            report.lost_chunks
        );
        w!(
            out.text,
            "degraded reads {} (all verified), failed gets {}",
            report.degraded_reads,
            report.failed_gets
        );
        match report.rebuild_done_us {
            Some(done) => w!(
                out.text,
                "rebuild finished at t={done} µs: {} stripes repaired ({} local + {} network \
                 chunks), {} skipped, {} unrecoverable",
                report.repaired_stripes,
                report.repaired_local_chunks,
                report.repaired_network_chunks,
                report.skipped_stripes,
                report.unrecoverable_stripes
            ),
            None => w!(out.text, "rebuild did not finish within the trace"),
        }
        if let (Some(steady), Some(rebuild)) = (report.phase("steady"), report.phase("rebuild")) {
            w!(
                out.text,
                "interference: rebuild p99 {} µs vs steady p99 {} µs ({:+.1}%), p999 {} vs {}",
                rebuild.p99_us,
                steady.p99_us,
                (rebuild.p99_us as f64 / steady.p99_us.max(1) as f64 - 1.0) * 100.0,
                rebuild.p999_us,
                steady.p999_us
            );
        }
    }
    w!(
        out.text,
        "\narbiter traffic: foreground {} I/Os / {} B, repair {} I/Os / {} B",
        report.foreground_ios,
        report.foreground_bytes,
        report.repair_ios,
        report.repair_bytes
    );
    if report.oplog_records > 0 {
        w!(
            out.text,
            "op log: {} records (bit-identical across thread counts)",
            report.oplog_records
        );
    }
    if let Some(secs) = report.wall_secs {
        w!(
            out.text,
            "wall clock: {:.2} s ({:.0} ops/s replayed)",
            secs,
            report.ops as f64 / secs.max(1e-9)
        );
    }

    if ctx.u64("require_degraded") != 0 {
        if report.degraded_reads == 0 {
            out.gate_failures
                .push("gate: require_degraded=1 but no read was degraded".to_string());
        }
        if report.kill_time_us.is_some() && report.rebuild_done_us.is_none() {
            out.gate_failures
                .push("gate: require_degraded=1 but the rebuild never finished".to_string());
        }
        if report.failed_gets > 0 || report.unrecoverable_stripes > 0 {
            out.gate_failures.push(format!(
                "gate: {} failed gets, {} unrecoverable stripes",
                report.failed_gets, report.unrecoverable_stripes
            ));
        }
    }

    let phases: Vec<Json> = report
        .phases
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("phase".to_string(), Json::Str(p.phase.to_string())),
                ("count".to_string(), Json::U64(p.count)),
                ("mean_us".to_string(), Json::F64(p.mean_us)),
                ("p50_us".to_string(), Json::U64(p.p50_us)),
                ("p99_us".to_string(), Json::U64(p.p99_us)),
                ("p999_us".to_string(), Json::U64(p.p999_us)),
                ("max_us".to_string(), Json::U64(p.max_us)),
            ])
        })
        .collect();
    // Deliberately excludes `wall_secs`: artifacts stay deterministic.
    let artifact = Json::obj(vec![
        ("ops", Json::U64(report.ops)),
        ("puts", Json::U64(report.puts)),
        ("gets", Json::U64(report.gets)),
        ("deletes", Json::U64(report.deletes)),
        ("misses", Json::U64(report.misses)),
        ("degraded_reads", Json::U64(report.degraded_reads)),
        ("failed_gets", Json::U64(report.failed_gets)),
        ("verified_inline", Json::U64(report.verified_inline)),
        ("verified_final", Json::U64(report.verified_final)),
        ("phases", Json::Arr(phases)),
        (
            "kill_time_us",
            report.kill_time_us.map_or(Json::Null, Json::U64),
        ),
        ("lost_chunks", Json::U64(report.lost_chunks)),
        (
            "rebuild_done_us",
            report.rebuild_done_us.map_or(Json::Null, Json::U64),
        ),
        ("repaired_stripes", Json::U64(report.repaired_stripes)),
        ("skipped_stripes", Json::U64(report.skipped_stripes)),
        (
            "unrecoverable_stripes",
            Json::U64(report.unrecoverable_stripes),
        ),
        (
            "repaired_local_chunks",
            Json::U64(report.repaired_local_chunks),
        ),
        (
            "repaired_network_chunks",
            Json::U64(report.repaired_network_chunks),
        ),
        ("cache_hit_rate", Json::F64(report.cache_hit_rate)),
        ("foreground_ios", Json::U64(report.foreground_ios)),
        ("foreground_bytes", Json::U64(report.foreground_bytes)),
        ("repair_ios", Json::U64(report.repair_ios)),
        ("repair_bytes", Json::U64(report.repair_bytes)),
        ("oplog_records", Json::U64(report.oplog_records)),
    ]);
    out.artifacts.push(("store_bench".to_string(), artifact));
    Ok(out)
}

experiment!(StoreBench, STORE_BENCH_INFO, run_store_bench_exp);
