//! `mlec-topology`: the physical model of the datacenter and the chunk
//! placement schemes analyzed by the paper (§2.2, Fig. 3).
//!
//! - [`geometry`]: the rack → enclosure → disk hierarchy and the paper's §3
//!   reference setup (57,600 disks: 60 racks × 8 enclosures × 120 disks).
//! - [`placement`]: pool maps for the four MLEC schemes (C/C, C/D, D/C,
//!   D/D), the four SLEC placements (Local-Cp/Dp, Net-Cp/Dp), and LRC-Dp.
//! - [`layout`]: failure layouts (which disks are concurrently failed) and
//!   per-rack / per-pool aggregation.
//! - [`burst`]: the correlated failure-burst generator used by the PDL
//!   heatmaps (`y` simultaneous disk failures scattered across `x` racks).

pub mod burst;
pub mod geometry;
pub mod layout;
pub mod objectmap;
pub mod placement;

pub use geometry::{DiskId, EnclosureId, Geometry, RackId};
pub use layout::FailureLayout;
pub use placement::{LocalPoolMap, MlecScheme, Placement, SlecPlacement};
