//! Chunk/parity placement schemes (paper §2.2, Fig. 3).
//!
//! Two orthogonal choices — clustered vs. declustered parity — at each of
//! the two levels give the four MLEC schemes C/C, C/D, D/C, D/D. The same
//! choices applied to a single level give the four SLEC placements of §5.1.3.
//!
//! The operational core is the notion of a **pool**:
//!
//! - a *local pool* is the set of disks a local stripe may occupy. Clustered
//!   (`Cp`): exactly `k_l + p_l` adjacent disks, stripes span the whole pool.
//!   Declustered (`Dp`): the whole enclosure, stripes are pseudorandom
//!   `width`-subsets.
//! - a *network pool* is the set of local pools a network stripe may occupy.
//!   Network-clustered: `k_n + p_n` racks' worth of same-position local
//!   pools. Network-declustered: the whole system (stripes pick any
//!   `k_n + p_n` local pools in distinct racks).

use crate::geometry::{DiskId, Geometry, RackId};

/// Clustered or declustered parity placement (paper Fig. 2d/2e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Every `width` disks form a pool; a stripe occupies the entire pool.
    Clustered,
    /// The whole enclosure (or system, at network level) forms one pool;
    /// stripes are pseudorandomly spread.
    Declustered,
}

impl Placement {
    /// Single-letter name used in the paper's scheme notation.
    pub const fn letter(&self) -> char {
        match self {
            Placement::Clustered => 'C',
            Placement::Declustered => 'D',
        }
    }
}

/// One of the four MLEC placement schemes (network level / local level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MlecScheme {
    /// Placement at the network (inter-rack) level.
    pub network: Placement,
    /// Placement at the local (intra-enclosure) level.
    pub local: Placement,
}

impl MlecScheme {
    /// Clustered/clustered.
    pub const CC: MlecScheme = MlecScheme {
        network: Placement::Clustered,
        local: Placement::Clustered,
    };
    /// Clustered network, declustered local.
    pub const CD: MlecScheme = MlecScheme {
        network: Placement::Clustered,
        local: Placement::Declustered,
    };
    /// Declustered network, clustered local.
    pub const DC: MlecScheme = MlecScheme {
        network: Placement::Declustered,
        local: Placement::Clustered,
    };
    /// Declustered/declustered.
    pub const DD: MlecScheme = MlecScheme {
        network: Placement::Declustered,
        local: Placement::Declustered,
    };

    /// All four schemes in the paper's presentation order.
    pub const ALL: [MlecScheme; 4] = [Self::CC, Self::CD, Self::DC, Self::DD];

    /// The paper's notation, e.g. `"C/D"`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.network.letter(), self.local.letter())
    }
}

impl std::fmt::Display for MlecScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// SLEC placements compared in §5.1.3 (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlecPlacement {
    /// Clustered pools inside an enclosure; no rack tolerance.
    LocalCp,
    /// Whole-enclosure declustered pool; no rack tolerance.
    LocalDp,
    /// Clustered pools spanning `k+p` racks (one chunk per rack).
    NetCp,
    /// System-wide declustered placement, chunks in distinct racks.
    NetDp,
}

impl SlecPlacement {
    /// All four placements in the paper's presentation order.
    pub const ALL: [SlecPlacement; 4] = [
        SlecPlacement::LocalCp,
        SlecPlacement::LocalDp,
        SlecPlacement::NetCp,
        SlecPlacement::NetDp,
    ];

    /// Paper label, e.g. `"Loc-Cp"`.
    pub fn name(&self) -> &'static str {
        match self {
            SlecPlacement::LocalCp => "Loc-Cp",
            SlecPlacement::LocalDp => "Loc-Dp",
            SlecPlacement::NetCp => "Net-Cp",
            SlecPlacement::NetDp => "Net-Dp",
        }
    }
}

impl std::fmt::Display for SlecPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Map from disks to local pools for a given local placement and stripe
/// width. Used both for MLEC local pools and local-SLEC pools.
#[derive(Debug, Clone)]
pub struct LocalPoolMap {
    geometry: Geometry,
    placement: Placement,
    /// Local stripe width `k_l + p_l`.
    stripe_width: u32,
    /// Disks per pool: `stripe_width` for Cp, `disks_per_enclosure` for Dp.
    pool_size: u32,
    pools_per_enclosure: u32,
}

impl LocalPoolMap {
    /// Build the pool map.
    ///
    /// # Panics
    /// For clustered placement, panics unless the enclosure size is a
    /// multiple of the stripe width (the paper's deployment constraint:
    /// "an enclosure must have a multiple of `k_l + p_l` disks").
    pub fn new(geometry: Geometry, placement: Placement, stripe_width: u32) -> LocalPoolMap {
        assert!(stripe_width >= 2, "stripe width must be at least 2");
        assert!(
            stripe_width <= geometry.disks_per_enclosure,
            "stripe width {} exceeds enclosure size {}",
            stripe_width,
            geometry.disks_per_enclosure
        );
        let (pool_size, pools_per_enclosure) = match placement {
            Placement::Clustered => {
                assert_eq!(
                    geometry.disks_per_enclosure % stripe_width,
                    0,
                    "enclosure size {} not a multiple of stripe width {}",
                    geometry.disks_per_enclosure,
                    stripe_width
                );
                (stripe_width, geometry.disks_per_enclosure / stripe_width)
            }
            Placement::Declustered => (geometry.disks_per_enclosure, 1),
        };
        LocalPoolMap {
            geometry,
            placement,
            stripe_width,
            pool_size,
            pools_per_enclosure,
        }
    }

    /// The geometry this map was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The local placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Local stripe width `k_l + p_l`.
    pub fn stripe_width(&self) -> u32 {
        self.stripe_width
    }

    /// Disks per pool (20 for the paper's `*/C`, 120 for `*/D`).
    pub fn pool_size(&self) -> u32 {
        self.pool_size
    }

    /// Pools per enclosure (6 for the paper's `*/C`, 1 for `*/D`).
    pub fn pools_per_enclosure(&self) -> u32 {
        self.pools_per_enclosure
    }

    /// Pools per rack.
    pub fn pools_per_rack(&self) -> u32 {
        self.pools_per_enclosure * self.geometry.enclosures_per_rack
    }

    /// Total pools in the system (2,880 for the paper's `*/C`, 480 for `*/D`).
    pub fn num_pools(&self) -> u32 {
        self.pools_per_rack() * self.geometry.racks
    }

    /// Pool containing `disk`.
    pub fn pool_of(&self, disk: DiskId) -> u32 {
        let encl = self.geometry.global_enclosure_of(disk);
        match self.placement {
            Placement::Clustered => {
                encl * self.pools_per_enclosure + self.geometry.slot_of(disk) / self.stripe_width
            }
            Placement::Declustered => encl,
        }
    }

    /// Rack containing pool `pool`.
    pub fn rack_of_pool(&self, pool: u32) -> RackId {
        pool / self.pools_per_rack()
    }

    /// Position of the pool within its rack, `[0, pools_per_rack)` — the
    /// "same local pool position" coordinate that network-clustered pooling
    /// groups by.
    pub fn position_in_rack(&self, pool: u32) -> u32 {
        pool % self.pools_per_rack()
    }

    /// The disks of pool `pool`, as a contiguous id range.
    pub fn disks_of_pool(&self, pool: u32) -> std::ops::Range<DiskId> {
        let start = pool * self.pool_size;
        start..start + self.pool_size
    }

    /// Pool capacity in TB (400 TB for the paper's `*/C`, 2,400 for `*/D`).
    pub fn pool_capacity_tb(&self) -> f64 {
        self.pool_size as f64 * self.geometry.disk_capacity_tb
    }
}

/// Map from local pools to network pools for network-*clustered* MLEC
/// (`C/*` schemes): racks are partitioned into groups of `k_n + p_n`, and
/// the same-position local pools across a rack group form one network pool.
#[derive(Debug, Clone)]
pub struct NetworkPoolMap {
    /// Network stripe width `k_n + p_n` (also the rack-group size).
    rack_group_size: u32,
    pools_per_rack: u32,
    racks: u32,
}

impl NetworkPoolMap {
    /// Build the network pool map over `local` pools with network stripe
    /// width `k_n + p_n`.
    ///
    /// # Panics
    /// Panics unless the rack count is a multiple of `k_n + p_n` (the
    /// paper's deployment constraint for `C/*` schemes).
    pub fn new_clustered(local: &LocalPoolMap, network_stripe_width: u32) -> NetworkPoolMap {
        let racks = local.geometry().racks;
        assert!(network_stripe_width >= 2);
        assert_eq!(
            racks % network_stripe_width,
            0,
            "rack count {racks} not a multiple of network stripe width {network_stripe_width}"
        );
        NetworkPoolMap {
            rack_group_size: network_stripe_width,
            pools_per_rack: local.pools_per_rack(),
            racks,
        }
    }

    /// Number of rack groups.
    pub fn rack_groups(&self) -> u32 {
        self.racks / self.rack_group_size
    }

    /// Total network pools: `rack_groups * pools_per_rack`.
    pub fn num_network_pools(&self) -> u32 {
        self.rack_groups() * self.pools_per_rack
    }

    /// Network pool of a local pool, identified by `(rack, position)`.
    pub fn network_pool_of(&self, local_pool: u32) -> u32 {
        let rack = local_pool / self.pools_per_rack;
        let position = local_pool % self.pools_per_rack;
        (rack / self.rack_group_size) * self.pools_per_rack + position
    }

    /// Local pools per network pool (`k_n + p_n`).
    pub fn pools_per_network_pool(&self) -> u32 {
        self.rack_group_size
    }
}

/// Pool key for network-clustered SLEC (`Net-Cp`): disks at the same
/// (enclosure, slot) position across a group of `k+p` racks form one pool.
/// Returns the pool index of `disk`.
///
/// # Panics
/// Panics unless the rack count is a multiple of `stripe_width`.
pub fn net_cp_pool_of(geometry: &Geometry, stripe_width: u32, disk: DiskId) -> u32 {
    assert_eq!(
        geometry.racks % stripe_width,
        0,
        "rack count must be a multiple of the Net-Cp stripe width"
    );
    let rack_group = geometry.rack_of(disk) / stripe_width;
    let position = disk % geometry.disks_per_rack(); // (enclosure, slot)
    rack_group * geometry.disks_per_rack() + position
}

/// Number of Net-Cp pools in the system.
pub fn net_cp_num_pools(geometry: &Geometry, stripe_width: u32) -> u32 {
    (geometry.racks / stripe_width) * geometry.disks_per_rack()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(MlecScheme::CC.name(), "C/C");
        assert_eq!(MlecScheme::CD.name(), "C/D");
        assert_eq!(MlecScheme::DC.name(), "D/C");
        assert_eq!(MlecScheme::DD.name(), "D/D");
        assert_eq!(
            MlecScheme::ALL.map(|s| s.name()),
            ["C/C", "C/D", "D/C", "D/D"].map(String::from)
        );
    }

    #[test]
    fn paper_clustered_pools() {
        // (17+3) local code: 20-disk pools, 6 per enclosure, 48 per rack,
        // 2,880 in the system, 400 TB each (§3 and Table 2).
        let g = Geometry::paper_default();
        let map = LocalPoolMap::new(g, Placement::Clustered, 20);
        assert_eq!(map.pool_size(), 20);
        assert_eq!(map.pools_per_enclosure(), 6);
        assert_eq!(map.pools_per_rack(), 48);
        assert_eq!(map.num_pools(), 2880);
        assert!((map.pool_capacity_tb() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn paper_declustered_pools() {
        // Local-Dp pool = whole 120-disk enclosure: 480 pools, 2,400 TB each.
        let g = Geometry::paper_default();
        let map = LocalPoolMap::new(g, Placement::Declustered, 20);
        assert_eq!(map.pool_size(), 120);
        assert_eq!(map.num_pools(), 480);
        assert!((map.pool_capacity_tb() - 2400.0).abs() < 1e-9);
    }

    #[test]
    fn pool_of_is_consistent_with_disks_of_pool() {
        let g = Geometry::small_test();
        for placement in [Placement::Clustered, Placement::Declustered] {
            let map = LocalPoolMap::new(g, placement, 4);
            for pool in 0..map.num_pools() {
                for disk in map.disks_of_pool(pool) {
                    assert_eq!(map.pool_of(disk), pool, "{placement:?} disk {disk}");
                }
            }
            // Every disk belongs to exactly one pool (covered by ranges).
            let covered: u32 = (0..map.num_pools())
                .map(|p| map.disks_of_pool(p).len() as u32)
                .sum();
            assert_eq!(covered, g.total_disks());
        }
    }

    #[test]
    fn pool_rack_and_position() {
        let g = Geometry::paper_default();
        let map = LocalPoolMap::new(g, Placement::Clustered, 20);
        // Pool 50 is in rack 1 (48 pools per rack), position 2.
        assert_eq!(map.rack_of_pool(50), 1);
        assert_eq!(map.position_in_rack(50), 2);
        // Same-position pools in different racks differ by pools_per_rack.
        assert_eq!(map.position_in_rack(50 + 48), 2);
    }

    #[test]
    fn network_clustered_grouping() {
        // (10+2) network over the paper's geometry: 60 racks / 12 = 5 rack
        // groups; 5 * 48 = 240 network pools.
        let g = Geometry::paper_default();
        let local = LocalPoolMap::new(g, Placement::Clustered, 20);
        let net = NetworkPoolMap::new_clustered(&local, 12);
        assert_eq!(net.rack_groups(), 5);
        assert_eq!(net.num_network_pools(), 240);
        assert_eq!(net.pools_per_network_pool(), 12);
        // Local pools at the same position in racks 0 and 11 share a network
        // pool; racks 11 and 12 do not.
        let p_rack0 = 7; // rack 0 * 48 pools/rack + position 7
        let p_rack11 = 11 * 48 + 7;
        let p_rack12 = 12 * 48 + 7;
        assert_eq!(net.network_pool_of(p_rack0), net.network_pool_of(p_rack11));
        assert_ne!(net.network_pool_of(p_rack0), net.network_pool_of(p_rack12));
        // Different positions in the same rack group are different pools.
        assert_ne!(
            net.network_pool_of(p_rack0),
            net.network_pool_of(p_rack0 + 1)
        );
    }

    #[test]
    #[should_panic]
    fn network_clustered_requires_divisible_racks() {
        let g = Geometry::paper_default(); // 60 racks
        let local = LocalPoolMap::new(g, Placement::Clustered, 20);
        let _ = NetworkPoolMap::new_clustered(&local, 7); // 60 % 7 != 0
    }

    #[test]
    fn net_cp_slec_pools() {
        // (7+3) Net-Cp SLEC over 60 racks: 6 rack groups x 960 positions.
        let g = Geometry::paper_default();
        assert_eq!(net_cp_num_pools(&g, 10), 6 * 960);
        // Disks at the same (enclosure, slot) in racks 0..9 share a pool.
        let d0 = g.disk_at(0, 3, 17);
        let d9 = g.disk_at(9, 3, 17);
        let d10 = g.disk_at(10, 3, 17);
        assert_eq!(net_cp_pool_of(&g, 10, d0), net_cp_pool_of(&g, 10, d9));
        assert_ne!(net_cp_pool_of(&g, 10, d0), net_cp_pool_of(&g, 10, d10));
        // A different slot in the same rack group is a different pool.
        let d0b = g.disk_at(0, 3, 18);
        assert_ne!(net_cp_pool_of(&g, 10, d0), net_cp_pool_of(&g, 10, d0b));
    }

    #[test]
    #[should_panic]
    fn clustered_requires_divisible_enclosure() {
        let g = Geometry::paper_default(); // 120 disks per enclosure
        let _ = LocalPoolMap::new(g, Placement::Clustered, 7); // 120 % 7 != 0
    }
}
