//! Failure layouts: which disks are concurrently failed, with per-rack and
//! per-pool aggregation used by the burst-tolerance analysis.

use crate::geometry::{DiskId, Geometry, RackId};
use crate::placement::LocalPoolMap;
use std::collections::BTreeMap;

/// A set of concurrently failed disks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureLayout {
    failed: Vec<DiskId>,
}

impl FailureLayout {
    /// Build from a list of failed disks (deduplicated, sorted).
    pub fn new(mut failed: Vec<DiskId>) -> FailureLayout {
        failed.sort_unstable();
        failed.dedup();
        FailureLayout { failed }
    }

    /// The failed disks, sorted ascending.
    pub fn disks(&self) -> &[DiskId] {
        &self.failed
    }

    /// Number of failed disks.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// True when no disk is failed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Failed-disk count per rack (racks with zero failures omitted).
    pub fn per_rack_counts(&self, geometry: &Geometry) -> BTreeMap<RackId, u32> {
        let mut counts = BTreeMap::new();
        for &d in &self.failed {
            *counts.entry(geometry.rack_of(d)).or_insert(0) += 1;
        }
        counts
    }

    /// Number of racks with at least one failure.
    pub fn affected_racks(&self, geometry: &Geometry) -> usize {
        self.per_rack_counts(geometry).len()
    }

    /// Failed-disk count per local pool (pools with zero failures omitted).
    pub fn per_pool_counts(&self, pools: &LocalPoolMap) -> BTreeMap<u32, u32> {
        let mut counts = BTreeMap::new();
        for &d in &self.failed {
            *counts.entry(pools.pool_of(d)).or_insert(0) += 1;
        }
        counts
    }

    /// Pools whose failure count is at least `threshold` (e.g. `p_l + 1`
    /// for catastrophic-pool detection in `*/C` schemes).
    pub fn pools_at_or_above(&self, pools: &LocalPoolMap, threshold: u32) -> Vec<u32> {
        let mut hit: Vec<u32> = self
            .per_pool_counts(pools)
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .map(|(p, _)| p)
            .collect();
        hit.sort_unstable();
        hit
    }
}

impl FromIterator<DiskId> for FailureLayout {
    fn from_iter<T: IntoIterator<Item = DiskId>>(iter: T) -> FailureLayout {
        FailureLayout::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    #[test]
    fn dedup_and_sort() {
        let layout = FailureLayout::new(vec![5, 3, 5, 1]);
        assert_eq!(layout.disks(), &[1, 3, 5]);
        assert_eq!(layout.len(), 3);
        assert!(!layout.is_empty());
    }

    #[test]
    fn per_rack_counts() {
        let g = Geometry::small_test(); // 24 disks per rack
        let layout = FailureLayout::new(vec![0, 1, 24, 50]);
        let counts = layout.per_rack_counts(&g);
        assert_eq!(counts[&0], 2);
        assert_eq!(counts[&1], 1);
        assert_eq!(counts[&2], 1);
        assert_eq!(layout.affected_racks(&g), 3);
    }

    #[test]
    fn per_pool_counts_and_threshold() {
        let g = Geometry::small_test();
        let map = LocalPoolMap::new(g, Placement::Clustered, 4);
        // Disks 0..4 are pool 0; disks 4..8 are pool 1.
        let layout = FailureLayout::new(vec![0, 1, 2, 4]);
        let counts = layout.per_pool_counts(&map);
        assert_eq!(counts[&0], 3);
        assert_eq!(counts[&1], 1);
        assert_eq!(layout.pools_at_or_above(&map, 2), vec![0]);
        assert_eq!(layout.pools_at_or_above(&map, 4), Vec::<u32>::new());
    }

    #[test]
    fn from_iterator() {
        let layout: FailureLayout = (0u32..5).collect();
        assert_eq!(layout.len(), 5);
    }
}
