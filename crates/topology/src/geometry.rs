//! The datacenter hierarchy: racks contain enclosures contain disks.
//!
//! Disks are numbered densely: disk `d` lives in rack `d / disks_per_rack`,
//! enclosure `(d % disks_per_rack) / disks_per_enclosure`, slot
//! `d % disks_per_enclosure`. All placement schemes are defined in terms of
//! these coordinates.

/// Global disk index in `[0, total_disks)`.
pub type DiskId = u32;
/// Rack index in `[0, racks)`.
pub type RackId = u32;
/// Enclosure index within its rack, `[0, enclosures_per_rack)`.
pub type EnclosureId = u32;

/// Physical shape and capacity parameters of the simulated datacenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Number of racks.
    pub racks: u32,
    /// Enclosures per rack.
    pub enclosures_per_rack: u32,
    /// Disks per enclosure.
    pub disks_per_enclosure: u32,
    /// Per-disk capacity in terabytes.
    pub disk_capacity_tb: f64,
    /// Chunk size in kilobytes.
    pub chunk_kb: f64,
}

impl Geometry {
    /// The paper's §3 reference setup: 57,600 disks across 60 racks, 8
    /// enclosures per rack, 120 disks per enclosure, 20 TB disks, 128 KB
    /// chunks.
    pub const fn paper_default() -> Geometry {
        Geometry {
            racks: 60,
            enclosures_per_rack: 8,
            disks_per_enclosure: 120,
            disk_capacity_tb: 20.0,
            chunk_kb: 128.0,
        }
    }

    /// A small geometry for fast tests: 6 racks × 2 enclosures × 12 disks.
    pub const fn small_test() -> Geometry {
        Geometry {
            racks: 6,
            enclosures_per_rack: 2,
            disks_per_enclosure: 12,
            disk_capacity_tb: 20.0,
            chunk_kb: 128.0,
        }
    }

    /// Disks per rack.
    pub const fn disks_per_rack(&self) -> u32 {
        self.enclosures_per_rack * self.disks_per_enclosure
    }

    /// Total disks in the system.
    pub const fn total_disks(&self) -> u32 {
        self.racks * self.disks_per_rack()
    }

    /// Total enclosures in the system.
    pub const fn total_enclosures(&self) -> u32 {
        self.racks * self.enclosures_per_rack
    }

    /// Raw capacity of the system in TB.
    pub fn total_capacity_tb(&self) -> f64 {
        self.total_disks() as f64 * self.disk_capacity_tb
    }

    /// Chunks that fit on one disk.
    pub fn chunks_per_disk(&self) -> f64 {
        self.disk_capacity_tb * 1e12 / (self.chunk_kb * 1e3)
    }

    /// Rack of a disk.
    pub const fn rack_of(&self, disk: DiskId) -> RackId {
        disk / self.disks_per_rack()
    }

    /// Enclosure (within its rack) of a disk.
    pub const fn enclosure_of(&self, disk: DiskId) -> EnclosureId {
        (disk % self.disks_per_rack()) / self.disks_per_enclosure
    }

    /// Global enclosure index of a disk (`rack * enclosures_per_rack +
    /// enclosure`).
    pub const fn global_enclosure_of(&self, disk: DiskId) -> u32 {
        self.rack_of(disk) * self.enclosures_per_rack + self.enclosure_of(disk)
    }

    /// Slot of a disk within its enclosure.
    pub const fn slot_of(&self, disk: DiskId) -> u32 {
        disk % self.disks_per_enclosure
    }

    /// Disk id from (rack, enclosure, slot) coordinates.
    pub const fn disk_at(&self, rack: RackId, enclosure: EnclosureId, slot: u32) -> DiskId {
        rack * self.disks_per_rack() + enclosure * self.disks_per_enclosure + slot
    }

    /// Iterator over all disks in a rack.
    pub fn disks_in_rack(&self, rack: RackId) -> std::ops::Range<DiskId> {
        let start = rack * self.disks_per_rack();
        start..start + self.disks_per_rack()
    }

    /// Iterator over all disks in a (rack, enclosure).
    pub fn disks_in_enclosure(
        &self,
        rack: RackId,
        enclosure: EnclosureId,
    ) -> std::ops::Range<DiskId> {
        let start = self.disk_at(rack, enclosure, 0);
        start..start + self.disks_per_enclosure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section3() {
        let g = Geometry::paper_default();
        assert_eq!(g.total_disks(), 57_600);
        assert_eq!(g.disks_per_rack(), 960);
        assert_eq!(g.total_enclosures(), 480);
        assert!((g.total_capacity_tb() - 57_600.0 * 20.0).abs() < 1e-6);
    }

    #[test]
    fn coordinates_round_trip() {
        let g = Geometry::small_test();
        for disk in 0..g.total_disks() {
            let r = g.rack_of(disk);
            let e = g.enclosure_of(disk);
            let s = g.slot_of(disk);
            assert_eq!(g.disk_at(r, e, s), disk);
            assert!(r < g.racks);
            assert!(e < g.enclosures_per_rack);
            assert!(s < g.disks_per_enclosure);
        }
    }

    #[test]
    fn rack_and_enclosure_ranges() {
        let g = Geometry::small_test();
        let rack1: Vec<DiskId> = g.disks_in_rack(1).collect();
        assert_eq!(rack1.len(), g.disks_per_rack() as usize);
        assert!(rack1.iter().all(|&d| g.rack_of(d) == 1));
        let encl: Vec<DiskId> = g.disks_in_enclosure(2, 1).collect();
        assert_eq!(encl.len(), g.disks_per_enclosure as usize);
        assert!(encl
            .iter()
            .all(|&d| g.rack_of(d) == 2 && g.enclosure_of(d) == 1));
    }

    #[test]
    fn chunks_per_disk_paper_scale() {
        let g = Geometry::paper_default();
        // 20 TB / 128 KB = 156.25 million chunks.
        assert!((g.chunks_per_disk() - 20.0e12 / 128.0e3).abs() < 1.0);
    }
}
