//! Logical-object → physical-chunk address translation for MLEC.
//!
//! The paper's discussion (§6.1) calls out "efficiently mapping logical
//! objects to physical blocks in erasure-coded systems" as an open problem
//! that MLEC's layering makes harder. This module implements that mapping
//! for all four placement schemes: given a byte offset into the system's
//! logical data space, produce the exact `(network stripe, local stripe,
//! chunk position, disk)` holding it — deterministically, with the
//! pseudorandom declustered placements derived from a seeded hash so every
//! node in a cluster computes the same layout with no metadata lookups.

use crate::geometry::{DiskId, Geometry, RackId};
use crate::placement::{LocalPoolMap, MlecScheme, NetworkPoolMap, Placement};

/// Code parameters the mapper needs (decoupled from `mlec-ec` to keep the
/// layering acyclic: topology must not depend on the codec crate's types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapperCode {
    /// Network-level data chunks.
    pub kn: u32,
    /// Network-level parity chunks.
    pub pn: u32,
    /// Local-level data chunks.
    pub kl: u32,
    /// Local-level parity chunks.
    pub pl: u32,
}

impl MapperCode {
    /// The paper's `(10+2)/(17+3)`.
    pub const fn paper_default() -> MapperCode {
        MapperCode {
            kn: 10,
            pn: 2,
            kl: 17,
            pl: 3,
        }
    }

    /// Network stripe width.
    pub const fn network_width(&self) -> u32 {
        self.kn + self.pn
    }

    /// Local stripe width.
    pub const fn local_width(&self) -> u32 {
        self.kl + self.pl
    }

    /// Data bytes per network stripe given the chunk size.
    pub fn stripe_data_bytes(&self, chunk_bytes: u64) -> u64 {
        self.kn as u64 * self.kl as u64 * chunk_bytes
    }
}

/// The physical location of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkLocation {
    /// Network stripe index.
    pub network_stripe: u64,
    /// Row within the stripe: which local stripe (0..kn+pn); rows >= kn are
    /// network parity.
    pub row: u32,
    /// Column within the local stripe (0..kl+pl); cols >= kl are local
    /// parity.
    pub col: u32,
    /// The local pool holding this row.
    pub pool: u32,
    /// The disk holding the chunk.
    pub disk: DiskId,
}

/// Deterministic object-to-chunk mapper for an MLEC deployment.
#[derive(Debug, Clone)]
pub struct ObjectMapper {
    geometry: Geometry,
    code: MapperCode,
    scheme: MlecScheme,
    pools: LocalPoolMap,
    network_pools: Option<NetworkPoolMap>,
    chunk_bytes: u64,
    seed: u64,
}

impl ObjectMapper {
    /// Build a mapper. Clustered levels enforce the §2.2 divisibility
    /// constraints via the underlying pool maps.
    pub fn new(
        geometry: Geometry,
        code: MapperCode,
        scheme: MlecScheme,
        chunk_bytes: u64,
        seed: u64,
    ) -> ObjectMapper {
        let pools = LocalPoolMap::new(geometry, scheme.local, code.local_width());
        let network_pools = match scheme.network {
            Placement::Clustered => {
                Some(NetworkPoolMap::new_clustered(&pools, code.network_width()))
            }
            Placement::Declustered => None,
        };
        ObjectMapper {
            geometry,
            code,
            scheme,
            pools,
            network_pools,
            chunk_bytes,
            seed,
        }
    }

    /// Logical data capacity addressable by the mapper, in bytes.
    pub fn logical_capacity_bytes(&self) -> u64 {
        let total_chunks =
            self.geometry.total_disks() as u64 * self.geometry.chunks_per_disk() as u64;
        let stripes = total_chunks / (self.code.network_width() * self.code.local_width()) as u64;
        stripes * self.code.stripe_data_bytes(self.chunk_bytes)
    }

    /// Locate the chunk holding logical byte `offset`.
    ///
    /// # Panics
    /// Panics if `offset` exceeds [`ObjectMapper::logical_capacity_bytes`].
    pub fn locate(&self, offset: u64) -> ChunkLocation {
        assert!(
            offset < self.logical_capacity_bytes(),
            "offset beyond logical capacity"
        );
        let stripe_bytes = self.code.stripe_data_bytes(self.chunk_bytes);
        let network_stripe = offset / stripe_bytes;
        let within = offset % stripe_bytes;
        let data_chunk = (within / self.chunk_bytes) as u32;
        let row = data_chunk / self.code.kl;
        let col = data_chunk % self.code.kl;
        self.chunk_at(network_stripe, row, col)
    }

    /// All `(kn+pn) x (kl+pl)` chunk locations of a network stripe — what a
    /// repair coordinator enumerates when planning `R_FCO/R_MIN` reads.
    pub fn stripe_chunks(&self, network_stripe: u64) -> Vec<ChunkLocation> {
        let mut out =
            Vec::with_capacity((self.code.network_width() * self.code.local_width()) as usize);
        for row in 0..self.code.network_width() {
            for col in 0..self.code.local_width() {
                out.push(self.chunk_at(network_stripe, row, col));
            }
        }
        out
    }

    /// Location of one `(row, col)` chunk of a network stripe.
    pub fn chunk_at(&self, network_stripe: u64, row: u32, col: u32) -> ChunkLocation {
        assert!(row < self.code.network_width(), "row out of range");
        assert!(col < self.code.local_width(), "col out of range");
        let pool = self.pool_of_row(network_stripe, row);
        let disk = self.disk_of_chunk(network_stripe, pool, col);
        ChunkLocation {
            network_stripe,
            row,
            col,
            pool,
            disk,
        }
    }

    /// The local pool hosting `row` of `network_stripe`.
    fn pool_of_row(&self, network_stripe: u64, row: u32) -> u32 {
        match (&self.network_pools, self.scheme.network) {
            (Some(np), Placement::Clustered) => {
                // Round-robin network stripes over network pools; row i uses
                // the pool at the same position in the i-th rack of the
                // group.
                let np_index = (network_stripe % np.num_network_pools() as u64) as u32;
                let group = np_index / self.pools.pools_per_rack();
                let position = np_index % self.pools.pools_per_rack();
                let rack = group * np.pools_per_network_pool() + row;
                rack * self.pools.pools_per_rack() + position
            }
            (_, Placement::Declustered) => {
                // Pseudorandom distinct racks per stripe, then a pseudorandom
                // pool within each chosen rack.
                let racks = self.geometry.racks;
                let rack = distinct_sample(
                    hash3(self.seed, network_stripe, 0x5ac5),
                    racks,
                    self.code.network_width(),
                    row,
                );
                let pool_in_rack =
                    (hash3(self.seed, network_stripe.wrapping_add(row as u64), 0x900d)
                        % self.pools.pools_per_rack() as u64) as u32;
                rack * self.pools.pools_per_rack() + pool_in_rack
            }
            (None, Placement::Clustered) => unreachable!("clustered network keeps a pool map"),
        }
    }

    /// The disk hosting chunk `col` of the row placed in `pool`.
    fn disk_of_chunk(&self, network_stripe: u64, pool: u32, col: u32) -> DiskId {
        let pool_disks: Vec<DiskId> = self.pools.disks_of_pool(pool).collect();
        match self.scheme.local {
            Placement::Clustered => {
                // The stripe occupies the whole pool, one chunk per disk.
                pool_disks[col as usize]
            }
            Placement::Declustered => {
                // Pseudorandom distinct disks within the pool per (stripe,
                // pool).
                let idx = distinct_sample(
                    hash3(self.seed, network_stripe ^ (pool as u64) << 32, 0xd15c),
                    pool_disks.len() as u32,
                    self.code.local_width(),
                    col,
                );
                pool_disks[idx as usize]
            }
        }
    }

    /// Rack of a chunk location (convenience).
    pub fn rack_of(&self, loc: &ChunkLocation) -> RackId {
        self.geometry.rack_of(loc.disk)
    }
}

/// `SplitMix64` — a well-distributed 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    mix(seed ^ mix(a ^ mix(b)))
}

/// The `index`-th element of a deterministic pseudorandom permutation-prefix
/// of `0..n` of length `count`, derived from `key`. Implemented as a
/// Fisher–Yates prefix over a keyed index sequence — O(count) per call,
/// no allocation beyond the prefix.
fn distinct_sample(key: u64, n: u32, count: u32, index: u32) -> u32 {
    debug_assert!(count <= n, "cannot draw {count} distinct of {n}");
    debug_assert!(index < count);
    // Virtual Fisher-Yates: keep only the touched entries in a small map.
    let mut touched: Vec<(u32, u32)> = Vec::with_capacity(count as usize);
    let lookup = |touched: &[(u32, u32)], i: u32| -> u32 {
        touched
            .iter()
            .find(|&&(k, _)| k == i)
            .map_or(i, |&(_, v)| v)
    };
    let mut result = 0;
    for step in 0..=index {
        let j = step + (hash3(key, step as u64, 0x5eed) % (n - step) as u64) as u32;
        let vi = lookup(&touched, step);
        let vj = lookup(&touched, j);
        // swap positions step and j
        upsert(&mut touched, step, vj);
        upsert(&mut touched, j, vi);
        result = vj;
    }
    result
}

fn upsert(touched: &mut Vec<(u32, u32)>, key: u32, value: u32) {
    if let Some(slot) = touched.iter_mut().find(|(k, _)| *k == key) {
        slot.1 = value;
    } else {
        touched.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper(scheme: MlecScheme) -> ObjectMapper {
        ObjectMapper::new(
            Geometry::paper_default(),
            MapperCode::paper_default(),
            scheme,
            128_000, // geometry convention: decimal KB chunks
            0xfeed,
        )
    }

    #[test]
    fn distinct_sample_is_a_permutation_prefix() {
        for key in [1u64, 99, 12345] {
            for (n, count) in [(10u32, 10u32), (60, 12), (120, 20)] {
                let drawn: Vec<u32> = (0..count)
                    .map(|i| distinct_sample(key, n, count, i))
                    .collect();
                let mut sorted = drawn.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), count as usize, "distinct: {drawn:?}");
                assert!(drawn.iter().all(|&v| v < n));
            }
        }
    }

    #[test]
    fn locate_round_trips_rows_and_cols() {
        let m = mapper(MlecScheme::CC);
        let chunk = 128_000u64;
        // Byte 0 is stripe 0, row 0, col 0.
        let loc = m.locate(0);
        assert_eq!((loc.network_stripe, loc.row, loc.col), (0, 0, 0));
        // One local stripe of data later: row 1.
        let loc = m.locate(17 * chunk);
        assert_eq!((loc.row, loc.col), (1, 0));
        // One network stripe of data later: stripe 1.
        let loc = m.locate(170 * chunk);
        assert_eq!(loc.network_stripe, 1);
    }

    #[test]
    fn chunks_of_local_stripe_on_distinct_disks() {
        for scheme in MlecScheme::ALL {
            let m = mapper(scheme);
            for stripe in [0u64, 7, 1234] {
                let chunks = m.stripe_chunks(stripe);
                for row in 0..12u32 {
                    let mut disks: Vec<DiskId> = chunks
                        .iter()
                        .filter(|c| c.row == row)
                        .map(|c| c.disk)
                        .collect();
                    assert_eq!(disks.len(), 20);
                    disks.sort_unstable();
                    disks.dedup();
                    assert_eq!(disks.len(), 20, "{scheme} stripe {stripe} row {row}");
                }
            }
        }
    }

    #[test]
    fn rows_of_network_stripe_on_distinct_racks() {
        for scheme in MlecScheme::ALL {
            let m = mapper(scheme);
            for stripe in [0u64, 3, 999] {
                let chunks = m.stripe_chunks(stripe);
                let mut racks: Vec<RackId> = (0..12u32)
                    .map(|row| {
                        let c = chunks.iter().find(|c| c.row == row).unwrap();
                        m.rack_of(c)
                    })
                    .collect();
                racks.sort_unstable();
                racks.dedup();
                assert_eq!(racks.len(), 12, "{scheme} stripe {stripe}");
            }
        }
    }

    #[test]
    fn clustered_rows_stay_in_their_network_pool() {
        let m = mapper(MlecScheme::CC);
        let pools = LocalPoolMap::new(Geometry::paper_default(), Placement::Clustered, 20);
        let np = NetworkPoolMap::new_clustered(&pools, 12);
        for stripe in [0u64, 41, 500] {
            let chunks = m.stripe_chunks(stripe);
            let mut network_pools: Vec<u32> =
                chunks.iter().map(|c| np.network_pool_of(c.pool)).collect();
            network_pools.sort_unstable();
            network_pools.dedup();
            assert_eq!(network_pools.len(), 1, "one network pool per stripe");
        }
    }

    #[test]
    fn chunk_within_its_pool() {
        for scheme in MlecScheme::ALL {
            let m = mapper(scheme);
            let chunks = m.stripe_chunks(77);
            for c in &chunks {
                assert_eq!(m.pools.pool_of(c.disk), c.pool, "{scheme}");
            }
        }
    }

    #[test]
    fn mapping_is_deterministic_but_seed_sensitive() {
        let a = mapper(MlecScheme::DD).stripe_chunks(5);
        let b = mapper(MlecScheme::DD).stripe_chunks(5);
        assert_eq!(a, b);
        let other = ObjectMapper::new(
            Geometry::paper_default(),
            MapperCode::paper_default(),
            MlecScheme::DD,
            128_000,
            0xbeef,
        )
        .stripe_chunks(5);
        assert_ne!(a, other, "different seeds give different declustering");
    }

    #[test]
    fn capacity_accounting() {
        let m = mapper(MlecScheme::CC);
        // 57,600 disks * 156.25M chunks / 240 chunks-per-stripe...
        let cap = m.logical_capacity_bytes();
        // ... = data fraction 170/240 of raw capacity.
        let raw = 57_600.0 * 20e12;
        let expect = raw * 170.0 / 240.0;
        let got = cap as f64;
        assert!(
            (got - expect).abs() / expect < 1e-6,
            "cap={got} expect={expect}"
        );
    }

    #[test]
    #[should_panic]
    fn locate_rejects_out_of_range() {
        let m = mapper(MlecScheme::CC);
        m.locate(u64::MAX);
    }
}
