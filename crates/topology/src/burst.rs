//! Correlated failure-burst generation (paper §4.1.1, Fig. 5).
//!
//! A burst of `y` simultaneous disk failures is scattered across exactly `x`
//! racks: the `x` racks are chosen uniformly, each receives at least one
//! failure, the remaining `y - x` failures land on the chosen racks
//! uniformly, and within a rack the failed disks are distinct and uniform.

use crate::geometry::{DiskId, Geometry, RackId};
use crate::layout::FailureLayout;
use rand::seq::SliceRandom;
use rand::Rng;

/// Errors from burst generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BurstError {
    /// Need at least as many failures as affected racks.
    TooFewFailures { failures: u32, racks: u32 },
    /// More affected racks than racks in the system.
    TooManyRacks { requested: u32, available: u32 },
    /// More failures assigned to a rack than it has disks.
    RackOverflow {
        rack: RackId,
        requested: u32,
        disks: u32,
    },
}

impl std::fmt::Display for BurstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BurstError::TooFewFailures { failures, racks } => {
                write!(f, "{failures} failures cannot cover {racks} racks")
            }
            BurstError::TooManyRacks {
                requested,
                available,
            } => {
                write!(f, "requested {requested} racks but system has {available}")
            }
            BurstError::RackOverflow {
                rack,
                requested,
                disks,
            } => {
                write!(
                    f,
                    "rack {rack} asked for {requested} failures but has {disks} disks"
                )
            }
        }
    }
}

impl std::error::Error for BurstError {}

/// Sample a burst of `failures` failed disks scattered across exactly
/// `affected_racks` racks.
pub fn sample_burst<R: Rng>(
    geometry: &Geometry,
    failures: u32,
    affected_racks: u32,
    rng: &mut R,
) -> Result<FailureLayout, BurstError> {
    let counts = sample_rack_counts(geometry, failures, affected_racks, rng)?;
    let mut failed: Vec<DiskId> = Vec::with_capacity(failures as usize);
    for (rack, count) in counts {
        failed.extend(sample_disks_in_rack(geometry, rack, count, rng));
    }
    Ok(FailureLayout::new(failed))
}

/// Sample only the per-rack failure counts of a burst (rack identity
/// included). Exposed separately so analyses that work at per-rack
/// granularity can skip disk-level sampling.
pub fn sample_rack_counts<R: Rng>(
    geometry: &Geometry,
    failures: u32,
    affected_racks: u32,
    rng: &mut R,
) -> Result<Vec<(RackId, u32)>, BurstError> {
    if affected_racks > geometry.racks {
        return Err(BurstError::TooManyRacks {
            requested: affected_racks,
            available: geometry.racks,
        });
    }
    if failures < affected_racks {
        return Err(BurstError::TooFewFailures {
            failures,
            racks: affected_racks,
        });
    }
    let mut racks: Vec<RackId> = (0..geometry.racks).collect();
    racks.shuffle(rng);
    racks.truncate(affected_racks as usize);

    let capacity = geometry.disks_per_rack();
    if failures > capacity * affected_racks {
        return Err(BurstError::RackOverflow {
            rack: racks[0],
            requested: failures.div_ceil(affected_racks),
            disks: capacity,
        });
    }
    // Each chosen rack gets one failure; the remainder scatter uniformly
    // among racks that still have healthy disks.
    let mut counts = vec![1u32; affected_racks as usize];
    for _ in 0..(failures - affected_racks) {
        loop {
            let i = rng.gen_range(0..affected_racks as usize);
            if counts[i] < capacity {
                counts[i] += 1;
                break;
            }
        }
    }
    Ok(racks.into_iter().zip(counts).collect())
}

/// Sample `count` distinct failed disks uniformly within one rack.
pub fn sample_disks_in_rack<R: Rng>(
    geometry: &Geometry,
    rack: RackId,
    count: u32,
    rng: &mut R,
) -> Vec<DiskId> {
    let disks: Vec<DiskId> = geometry.disks_in_rack(rack).collect();
    debug_assert!(count as usize <= disks.len());
    disks
        .choose_multiple(rng, count as usize)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn burst_shape_invariants() {
        let g = Geometry::small_test();
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        for (y, x) in [(6u32, 3u32), (10, 1), (6, 6), (24, 2)] {
            let layout = sample_burst(&g, y, x, &mut rng).unwrap();
            assert_eq!(layout.len() as u32, y, "y={y} x={x}");
            assert_eq!(layout.affected_racks(&g) as u32, x, "y={y} x={x}");
            // Every rack got at least one failure.
            assert!(layout.per_rack_counts(&g).values().all(|&c| c >= 1));
        }
    }

    #[test]
    fn error_cases() {
        let g = Geometry::small_test(); // 6 racks x 24 disks
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert!(matches!(
            sample_burst(&g, 2, 4, &mut rng),
            Err(BurstError::TooFewFailures { .. })
        ));
        assert!(matches!(
            sample_burst(&g, 10, 7, &mut rng),
            Err(BurstError::TooManyRacks { .. })
        ));
        // 30 failures in one 24-disk rack cannot fit.
        assert!(matches!(
            sample_burst(&g, 30, 1, &mut rng),
            Err(BurstError::RackOverflow { .. })
        ));
    }

    #[test]
    fn failures_are_distinct_disks() {
        let g = Geometry::small_test();
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..50 {
            let layout = sample_burst(&g, 20, 4, &mut rng).unwrap();
            // FailureLayout dedups; equal length means all distinct.
            assert_eq!(layout.len(), 20);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = Geometry::paper_default();
        let a = sample_burst(&g, 30, 5, &mut ChaCha12Rng::seed_from_u64(99)).unwrap();
        let b = sample_burst(&g, 30, 5, &mut ChaCha12Rng::seed_from_u64(99)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rack_counts_sum_to_failures() {
        let g = Geometry::paper_default();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let counts = sample_rack_counts(&g, 60, 13, &mut rng).unwrap();
        assert_eq!(counts.len(), 13);
        assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u32>(), 60);
        // Rack ids are distinct.
        let mut ids: Vec<_> = counts.iter().map(|&(r, _)| r).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13);
    }
}
