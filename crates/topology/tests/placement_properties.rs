//! Property-based tests of the placement layer: pool maps, network
//! grouping, burst generation, and the object mapper.

use mlec_topology::objectmap::{MapperCode, ObjectMapper};
use mlec_topology::{burst, Geometry, LocalPoolMap, MlecScheme, Placement};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clustered pool maps tile the enclosure exactly.
    #[test]
    fn clustered_pools_tile_enclosures(widths in proptest::sample::select(vec![2u32, 3, 4, 6, 12])) {
        let g = Geometry::small_test(); // 12 disks per enclosure
        let map = LocalPoolMap::new(g, Placement::Clustered, widths);
        prop_assert_eq!(map.pool_size(), widths);
        prop_assert_eq!(map.pools_per_enclosure() * widths, g.disks_per_enclosure);
        // Every pool's disks share one enclosure.
        for pool in 0..map.num_pools() {
            let encls: std::collections::BTreeSet<u32> = map
                .disks_of_pool(pool)
                .map(|d| g.global_enclosure_of(d))
                .collect();
            prop_assert_eq!(encls.len(), 1);
        }
    }

    /// Burst sampling respects per-rack capacity even near the limit.
    #[test]
    fn burst_never_overflows_a_rack(seed: u64, x in 1u32..6) {
        let g = Geometry::small_test();
        let capacity = g.disks_per_rack(); // 24
        let y = capacity * x; // exactly full
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let counts = burst::sample_rack_counts(&g, y, x, &mut rng).unwrap();
        prop_assert!(counts.iter().all(|&(_, c)| c <= capacity));
        prop_assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u32>(), y);
    }

    /// Burst sampling fails cleanly when physically impossible.
    #[test]
    fn burst_overflow_detected(seed: u64, x in 1u32..4) {
        let g = Geometry::small_test();
        let y = g.disks_per_rack() * x + 1;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        prop_assert!(burst::sample_rack_counts(&g, y, x, &mut rng).is_err());
    }

    /// Object-mapper invariants hold for random stripes across all schemes:
    /// rows on distinct racks, chunks of a row on distinct disks of one
    /// pool.
    #[test]
    fn objectmap_invariants(stripe in 0u64..100_000, seed: u64) {
        let g = Geometry::paper_default();
        for scheme in MlecScheme::ALL {
            let mapper = ObjectMapper::new(g, MapperCode::paper_default(), scheme, 128_000, seed);
            let chunks = mapper.stripe_chunks(stripe);
            prop_assert_eq!(chunks.len(), 240);
            let mut racks = std::collections::BTreeSet::new();
            for row in 0..12u32 {
                let row_chunks: Vec<_> = chunks.iter().filter(|c| c.row == row).collect();
                let pools: std::collections::BTreeSet<u32> =
                    row_chunks.iter().map(|c| c.pool).collect();
                prop_assert_eq!(pools.len(), 1, "a local stripe lives in one pool");
                let disks: std::collections::BTreeSet<u32> =
                    row_chunks.iter().map(|c| c.disk).collect();
                prop_assert_eq!(disks.len(), 20, "chunks on distinct disks");
                racks.insert(mapper.rack_of(row_chunks[0]));
            }
            prop_assert_eq!(racks.len(), 12, "{}: rows on distinct racks", scheme);
        }
    }

    /// locate() is consistent with stripe_chunks().
    #[test]
    fn locate_agrees_with_stripe_enumeration(offset_chunks in 0u64..1_000_000) {
        let g = Geometry::paper_default();
        let mapper = ObjectMapper::new(
            g,
            MapperCode::paper_default(),
            MlecScheme::CD,
            128_000,
            1,
        );
        let offset = offset_chunks * 128_000;
        let loc = mapper.locate(offset);
        let from_enum = mapper
            .stripe_chunks(loc.network_stripe)
            .into_iter()
            .find(|c| c.row == loc.row && c.col == loc.col)
            .unwrap();
        prop_assert_eq!(loc, from_enum);
        // Data offsets never map to parity positions.
        prop_assert!(loc.row < 10);
        prop_assert!(loc.col < 17);
    }

    /// Disk coordinates round-trip through every geometry the suite uses.
    #[test]
    fn geometry_roundtrip(racks in 1u32..100, encl in 1u32..10, disks in 1u32..200) {
        let g = Geometry {
            racks,
            enclosures_per_rack: encl,
            disks_per_enclosure: disks,
            disk_capacity_tb: 20.0,
            chunk_kb: 128.0,
        };
        let total = g.total_disks();
        for probe in [0, total / 3, total.saturating_sub(1)] {
            if probe < total {
                let (r, e, s) = (g.rack_of(probe), g.enclosure_of(probe), g.slot_of(probe));
                prop_assert_eq!(g.disk_at(r, e, s), probe);
            }
        }
    }
}

#[test]
fn declustered_map_is_one_pool_per_enclosure() {
    let g = Geometry::paper_default();
    let map = LocalPoolMap::new(g, Placement::Declustered, 20);
    assert_eq!(map.num_pools(), g.total_enclosures());
    for pool in 0..map.num_pools() {
        assert_eq!(map.disks_of_pool(pool).len() as u32, g.disks_per_enclosure);
    }
}
