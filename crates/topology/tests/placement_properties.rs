//! Property tests of the placement layer: pool maps, network grouping,
//! burst generation, and the object mapper.
//!
//! Cases are driven by `mlec-runner`'s deterministic seed stream (one
//! substream per property, one seed per case), so every run exercises the
//! same inputs.

use mlec_runner::{SeedStream, SplitMix64};
use mlec_topology::objectmap::{MapperCode, ObjectMapper};
use mlec_topology::{burst, Geometry, LocalPoolMap, MlecScheme, Placement};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

const CASES: u64 = 48;

fn case_rng(property: &str, case: u64) -> SplitMix64 {
    SplitMix64::new(SeedStream::new(0x7090109, property).trial_seed(case))
}

fn in_range(r: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + r.next_u64() % (hi - lo)
}

/// Clustered pool maps tile the enclosure exactly.
#[test]
fn clustered_pools_tile_enclosures() {
    for widths in [2u32, 3, 4, 6, 12] {
        let g = Geometry::small_test(); // 12 disks per enclosure
        let map = LocalPoolMap::new(g, Placement::Clustered, widths);
        assert_eq!(map.pool_size(), widths);
        assert_eq!(map.pools_per_enclosure() * widths, g.disks_per_enclosure);
        // Every pool's disks share one enclosure.
        for pool in 0..map.num_pools() {
            let encls: std::collections::BTreeSet<u32> = map
                .disks_of_pool(pool)
                .map(|d| g.global_enclosure_of(d))
                .collect();
            assert_eq!(encls.len(), 1);
        }
    }
}

/// Burst sampling respects per-rack capacity even near the limit.
#[test]
fn burst_never_overflows_a_rack() {
    for case in 0..CASES {
        let mut r = case_rng("burst-capacity", case);
        let seed = r.next_u64();
        let x = in_range(&mut r, 1, 6) as u32;
        let g = Geometry::small_test();
        let capacity = g.disks_per_rack(); // 24
        let y = capacity * x; // exactly full
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let counts = burst::sample_rack_counts(&g, y, x, &mut rng).unwrap();
        assert!(counts.iter().all(|&(_, c)| c <= capacity));
        assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u32>(), y);
    }
}

/// Burst sampling fails cleanly when physically impossible.
#[test]
fn burst_overflow_detected() {
    for case in 0..CASES {
        let mut r = case_rng("burst-overflow", case);
        let seed = r.next_u64();
        let x = in_range(&mut r, 1, 4) as u32;
        let g = Geometry::small_test();
        let y = g.disks_per_rack() * x + 1;
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        assert!(burst::sample_rack_counts(&g, y, x, &mut rng).is_err());
    }
}

/// Object-mapper invariants hold for random stripes across all schemes:
/// rows on distinct racks, chunks of a row on distinct disks of one pool.
#[test]
fn objectmap_invariants() {
    for case in 0..CASES {
        let mut r = case_rng("objectmap", case);
        let stripe = in_range(&mut r, 0, 100_000);
        let seed = r.next_u64();
        let g = Geometry::paper_default();
        for scheme in MlecScheme::ALL {
            let mapper = ObjectMapper::new(g, MapperCode::paper_default(), scheme, 128_000, seed);
            let chunks = mapper.stripe_chunks(stripe);
            assert_eq!(chunks.len(), 240);
            let mut racks = std::collections::BTreeSet::new();
            for row in 0..12u32 {
                let row_chunks: Vec<_> = chunks.iter().filter(|c| c.row == row).collect();
                let pools: std::collections::BTreeSet<u32> =
                    row_chunks.iter().map(|c| c.pool).collect();
                assert_eq!(pools.len(), 1, "a local stripe lives in one pool");
                let disks: std::collections::BTreeSet<u32> =
                    row_chunks.iter().map(|c| c.disk).collect();
                assert_eq!(disks.len(), 20, "chunks on distinct disks");
                racks.insert(mapper.rack_of(row_chunks[0]));
            }
            assert_eq!(racks.len(), 12, "{scheme}: rows on distinct racks");
        }
    }
}

/// `locate()` is consistent with `stripe_chunks()`.
#[test]
fn locate_agrees_with_stripe_enumeration() {
    for case in 0..CASES {
        let mut r = case_rng("locate", case);
        let offset_chunks = in_range(&mut r, 0, 1_000_000);
        let g = Geometry::paper_default();
        let mapper = ObjectMapper::new(g, MapperCode::paper_default(), MlecScheme::CD, 128_000, 1);
        let offset = offset_chunks * 128_000;
        let loc = mapper.locate(offset);
        let from_enum = mapper
            .stripe_chunks(loc.network_stripe)
            .into_iter()
            .find(|c| c.row == loc.row && c.col == loc.col)
            .unwrap();
        assert_eq!(loc, from_enum);
        // Data offsets never map to parity positions.
        assert!(loc.row < 10);
        assert!(loc.col < 17);
    }
}

/// Disk coordinates round-trip through every geometry the suite uses.
#[test]
fn geometry_roundtrip() {
    for case in 0..CASES {
        let mut r = case_rng("geometry", case);
        let g = Geometry {
            racks: in_range(&mut r, 1, 100) as u32,
            enclosures_per_rack: in_range(&mut r, 1, 10) as u32,
            disks_per_enclosure: in_range(&mut r, 1, 200) as u32,
            disk_capacity_tb: 20.0,
            chunk_kb: 128.0,
        };
        let total = g.total_disks();
        for probe in [0, total / 3, total.saturating_sub(1)] {
            if probe < total {
                let (rk, e, s) = (g.rack_of(probe), g.enclosure_of(probe), g.slot_of(probe));
                assert_eq!(g.disk_at(rk, e, s), probe);
            }
        }
    }
}

#[test]
fn declustered_map_is_one_pool_per_enclosure() {
    let g = Geometry::paper_default();
    let map = LocalPoolMap::new(g, Placement::Declustered, 20);
    assert_eq!(map.num_pools(), g.total_enclosures());
    for pool in 0..map.num_pools() {
        assert_eq!(map.disks_of_pool(pool).len() as u32, g.disks_per_enclosure);
    }
}
