//! Fixture: the run fn reads `samples` (through a helper) but the schema
//! declares only `max` and `seed`.

static FIG99_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig99",
    title: "Figure 99",
    description: "fixture",
    paper_ref: "none",
    modes: &[Mode::Sim],
    params: params![
        ("max", U64, "60", "grid limit"),
        ("seed", U64, "42", "root seed")
    ],
    fast: &[],
};

fn spec(ctx: &ExperimentCtx) -> (u64, u64) {
    (ctx.u64("max"), ctx.u64("samples"))
}

fn run_fig99(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let (max, samples) = spec(ctx);
    let seed = ctx.u64("seed");
    Ok(render(max, samples, seed))
}

experiment!(Fig99, FIG99_INFO, run_fig99);
