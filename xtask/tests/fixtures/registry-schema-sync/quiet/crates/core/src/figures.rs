//! Fixture near-miss: every read — direct, through a helper, and through
//! a shared `&[ParamSpec]` static reference — is declared.

static SHARED_PARAMS: &[ParamSpec] = params![
    ("max", U64, "60", "grid limit"),
    ("samples", U64, "100", "samples per cell"),
    ("seed", U64, "42", "root seed")
];

static FIG98_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig98",
    title: "Figure 98",
    description: "fixture",
    paper_ref: "none",
    modes: &[Mode::Sim],
    params: SHARED_PARAMS,
    fast: &[],
};

static FIG99_INFO: ExperimentInfo = ExperimentInfo {
    name: "fig99",
    title: "Figure 99",
    description: "fixture",
    paper_ref: "none",
    modes: &[Mode::Sim],
    params: params![("bias", Bias, "none", "failure bias")],
    fast: &[],
};

fn spec(ctx: &ExperimentCtx) -> (u64, u64) {
    (ctx.u64("max"), ctx.u64("samples"))
}

fn run_fig98(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let (max, samples) = spec(ctx);
    let seed = ctx.u64("seed");
    Ok(render(max, samples, seed))
}

fn run_fig99(ctx: &ExperimentCtx) -> Result<ExperimentOutput, ExperimentError> {
    let bias = ctx.bias();
    Ok(render_bias(bias))
}

experiment!(Fig98, FIG98_INFO, run_fig98);
experiment!(Fig99, FIG99_INFO, run_fig99);
