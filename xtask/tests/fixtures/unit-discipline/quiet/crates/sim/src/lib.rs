//! Fixture: near-misses that unit-discipline must NOT flag.

/// Suffixed-f64 record fields are a documented rendering boundary.
pub struct RepairPlan {
    pub cross_rack_traffic_tb: f64,
    pub network_time_h: f64,
}

/// Suffixed param with a proper newtype (here stand-in tuple structs).
pub struct Volume(pub f64);
pub struct Bandwidth(pub f64);

pub fn schedule_repair(volume_tb: Volume, bw_mbs: Bandwidth) -> f64 {
    volume_tb.0 / bw_mbs.0
}

/// Non-pub fn with a suffixed bare-f64 param is out of scope (call-site
/// local; the public contract is what the lint guards).
fn helper(span_hours: f64) -> f64 {
    span_hours
}

/// Same-class arithmetic stays legal.
pub fn total_volume() -> f64 {
    let disk_tb = 16.0;
    let spare_tb = 4.0;
    let sum = disk_tb + spare_tb;
    helper(sum)
}

/// Calls and struct-literal fields are not value operands.
pub fn assemble() -> RepairPlan {
    RepairPlan {
        cross_rack_traffic_tb: total_volume(),
        network_time_h: helper(1.0) * 2.0,
    }
}
