//! Fixture: every way unit-discipline should fire.

/// Suffixed parameter typed bare f64.
pub fn schedule_repair(volume_tb: f64, streams: u32) -> u32 {
    let _ = volume_tb;
    streams
}

/// Suffixed fn name returning bare f64.
pub fn sojourn_hours() -> f64 {
    42.0
}

/// Raw f64 arithmetic mixing TB with MB/s in one statement.
pub fn mixed_arithmetic() -> f64 {
    let wire_tb = 4400.0;
    let bw_mbs = 250.0;
    wire_tb / bw_mbs
}

/// Mixing a rate with a time span.
pub fn exposure() -> f64 {
    let rate_per_year = 0.01;
    let window_hours = 8766.0;
    rate_per_year * window_hours
}
