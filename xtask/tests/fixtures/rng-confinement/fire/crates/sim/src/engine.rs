//! Fixture: constructs an RNG stream outside the hazard kernel.

pub fn simulate(seed: u64) -> f64 {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    sample_exponential(&mut rng, 1.0)
}
