//! Fixture: the kernel itself may construct RNGs (exempt by path).

pub fn from_seed(seed: u64) -> ChaCha12Rng {
    use rand::SeedableRng as _;
    ChaCha12Rng::seed_from_u64(seed)
}
