//! Fixture near-miss: forbidden names appear only in a comment and in
//! test code — neither is a violation.

// Draw order is owned by the kernel; do NOT construct a ChaCha12Rng here.
pub fn simulate(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_stream() {
        let _rng = ChaCha12Rng::seed_from_u64(7);
    }
}
