//! Fixture: data-plane panic sites without a PANICS justification.

pub fn lookup(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller promised digits")
}
