//! Fixture: near-misses that panic-freedom must NOT flag.

/// Annotated sites are fine.
pub fn lookup(xs: &[u64], i: usize) -> u64 {
    // PANICS: callers index within `xs.len()` by contract.
    xs[i]
}

pub fn first(xs: &[u64]) -> u64 {
    // PANICS: the caller checked non-emptiness.
    *xs.first().unwrap()
}

/// Types, attributes, macros, and array literals use brackets without
/// indexing anything.
#[derive(Debug)]
pub struct Wrap {
    pub data: Vec<u8>,
}

pub fn build(n: usize) -> Vec<u64> {
    let table: [u64; 4] = [0, 1, 2, 3];
    let mut v = vec![table.len() as u64; n];
    // PANICS: `v` has `n >= 1` elements in every caller.
    v[0] = 1;
    v
}

/// `unwrap_or` and friends are not `unwrap`.
pub fn safe_parse(s: &str) -> u64 {
    s.parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let xs = vec![1u64];
        assert_eq!(*xs.first().unwrap(), xs[0]);
    }
}
