//! Fixture: a real violation suppressed by the adjacent allow file.

pub fn simulate() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
