//! Fixture near-miss: `var` that is not `env::var`, `Instant` only in a
//! comment and in test code.

/// A local helper that happens to be called `var` — not an env read.
fn var(x: u64) -> u64 {
    x * x
}

// Timing note: never use Instant in result paths.
pub fn simulate(seed: u64) -> u64 {
    var(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_scaffold_ok_in_tests() {
        let t0 = std::time::Instant::now();
        assert_eq!(var(3), 9);
        let _ = t0.elapsed();
    }
}
