//! Fixture: reads the wall clock and the environment in a result path.

pub fn simulate() -> u64 {
    let t0 = std::time::Instant::now();
    // PANICS: fixture targets the wall-clock lint, not panic-freedom.
    let bump: u64 = std::env::var("SIM_BUMP").unwrap().parse().unwrap();
    t0.elapsed().as_nanos() as u64 + bump
}
