//! Fixture crate root with the required deny attribute.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod slice;
