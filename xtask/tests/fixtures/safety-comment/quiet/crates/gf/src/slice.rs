//! Fixture near-miss: the same unsafe block, properly justified.

pub fn read_first(bytes: &[u8]) -> u64 {
    assert!(bytes.len() >= 8);
    // SAFETY: the assert above guarantees at least 8 readable bytes, and
    // read_unaligned has no alignment requirement.
    unsafe { bytes.as_ptr().cast::<u64>().read_unaligned() }
}
