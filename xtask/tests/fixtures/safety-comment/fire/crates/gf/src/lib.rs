//! Fixture crate root: contains unsafe code but no
//! deny(unsafe_op_in_unsafe_fn) attribute.

pub mod slice;
