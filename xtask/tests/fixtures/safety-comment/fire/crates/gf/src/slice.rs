//! Fixture: an unsafe block with no attached SAFETY comment.

pub fn read_first(bytes: &[u8]) -> u64 {
    assert!(bytes.len() >= 8);
    unsafe { bytes.as_ptr().cast::<u64>().read_unaligned() }
}
