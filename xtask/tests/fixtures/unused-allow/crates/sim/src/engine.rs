//! Fixture: clean code under an allow file whose entry matches nothing.

pub fn simulate(seed: u64) -> u64 {
    seed.rotate_left(13)
}
