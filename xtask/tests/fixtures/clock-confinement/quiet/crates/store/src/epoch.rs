//! Fixture: the epoch barrier may merge clock state (exempt by path).

use crate::arbiter::RackClock;

pub fn max_join(clocks: &[RackClock]) -> u64 {
    clocks.iter().map(|c| c.uplink_busy_until).fold(0, u64::max)
}
