//! Fixture: the rack clock domain itself owns `busy_until` state
//! (exempt by path).

pub struct RackClock {
    pub uplink_busy_until: u64,
}

pub fn reserve(clock: &mut RackClock, now: u64, dur: u64) -> u64 {
    let start = clock.uplink_busy_until.max(now);
    clock.uplink_busy_until = start + dur;
    clock.uplink_busy_until
}
