//! Fixture near-miss: `busy_until` appears only in a comment, in test
//! code, and as a non-suffix substring — none is a violation.

// The scheduler never reads busy_until directly; it asks the arbiter.
pub fn route(op: u64, racks: u64) -> u64 {
    // Suffix check, not substring: this ident must not fire.
    let busy_until_flush = op % racks;
    busy_until_flush
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe() {
        let disk_busy_until = 7u64;
        assert_eq!(disk_busy_until, 7);
    }
}
