//! Fixture: a module outside the clock domain / epoch barrier keeping and
//! advancing its own `busy_until` state.

pub struct SideClock {
    pub uplink_busy_until: u64,
}

pub fn charge(clock: &mut SideClock, now: u64, dur: u64) -> u64 {
    let start = clock.uplink_busy_until.max(now);
    clock.uplink_busy_until = start + dur;
    clock.uplink_busy_until
}
