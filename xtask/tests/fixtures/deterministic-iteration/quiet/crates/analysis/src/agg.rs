//! Fixture near-miss: BTreeMap in scope, HashMap only in test code.

use std::collections::BTreeMap;

pub fn aggregate(samples: &[(u32, f64)]) -> f64 {
    let mut by_rack: BTreeMap<u32, f64> = BTreeMap::new();
    for (rack, pdl) in samples {
        *by_rack.entry(*rack).or_insert(0.0) += pdl;
    }
    by_rack.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_map_in_tests_is_fine() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
