//! Fixture near-miss: HashMap in a crate outside the result-path scope
//! (viz renders, it does not produce result artifacts).

use std::collections::HashMap;

pub fn color_cache() -> HashMap<u32, [u8; 3]> {
    HashMap::new()
}
