//! Fixture: HashMap in a result-producing crate.

use std::collections::HashMap;

pub fn aggregate(samples: &[(u32, f64)]) -> f64 {
    let mut by_rack: HashMap<u32, f64> = HashMap::new();
    for (rack, pdl) in samples {
        *by_rack.entry(*rack).or_insert(0.0) += pdl;
    }
    by_rack.values().sum()
}
