//! Integration tests for the lint engine: every lint must fire on its
//! `fire` fixture, stay quiet on its near-miss `quiet` fixture, the allow
//! machinery must round-trip, and — the point of the whole exercise — the
//! real workspace must be clean.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lints_at(root: &Path) -> Vec<xtask::diag::Diagnostic> {
    xtask::run_lints(root).expect("engine must not error on fixtures")
}

/// Diagnostics from `fire`, asserting they all belong to `lint`.
fn fire(lint: &str) -> Vec<xtask::diag::Diagnostic> {
    let diags = lints_at(&fixture(&format!("{lint}/fire")));
    assert!(
        !diags.is_empty(),
        "{lint}: fire fixture produced no diagnostics"
    );
    for d in &diags {
        assert_eq!(
            d.lint, lint,
            "{lint}: fire fixture leaked a different lint: {d}"
        );
    }
    diags
}

fn assert_quiet(lint: &str) {
    let diags = lints_at(&fixture(&format!("{lint}/quiet")));
    assert!(
        diags.is_empty(),
        "{lint}: near-miss fixture must stay quiet, got:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// --- L1 rng-confinement ---------------------------------------------

#[test]
fn rng_confinement_fires_outside_kernel() {
    let diags = fire("rng-confinement");
    assert!(diags.iter().any(|d| d.path == "crates/sim/src/engine.rs"));
    assert!(diags.iter().any(|d| d.message.contains("ChaCha12Rng")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("sample_exponential")));
}

#[test]
fn rng_confinement_quiet_on_kernel_comments_and_tests() {
    assert_quiet("rng-confinement");
}

// --- L2 no-wall-clock -----------------------------------------------

#[test]
fn wall_clock_fires_on_instant_and_env() {
    let diags = fire("no-wall-clock");
    assert!(diags.iter().any(|d| d.message.contains("`Instant`")));
    assert!(diags.iter().any(|d| d.message.contains("env::var")));
}

#[test]
fn wall_clock_quiet_on_local_var_and_test_timing() {
    assert_quiet("no-wall-clock");
}

// --- L3 deterministic-iteration ---------------------------------------

#[test]
fn det_iter_fires_on_hashmap_in_result_crate() {
    let diags = fire("deterministic-iteration");
    assert!(diags
        .iter()
        .any(|d| d.path == "crates/analysis/src/agg.rs" && d.message.contains("HashMap")));
}

#[test]
fn det_iter_quiet_on_btreemap_tests_and_out_of_scope_crates() {
    assert_quiet("deterministic-iteration");
}

// --- L4 safety-comment -------------------------------------------------

#[test]
fn safety_fires_on_bare_unsafe_and_missing_deny() {
    let diags = fire("safety-comment");
    assert!(
        diags
            .iter()
            .any(|d| d.path == "crates/gf/src/slice.rs" && d.message.contains("SAFETY")),
        "missing-SAFETY-comment diagnostic not found"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.path == "crates/gf/src/lib.rs"
                && d.message.contains("unsafe_op_in_unsafe_fn")),
        "missing-deny-attribute diagnostic not found"
    );
}

#[test]
fn safety_quiet_when_justified_and_denied() {
    assert_quiet("safety-comment");
}

// --- L5 registry-schema-sync -------------------------------------------

#[test]
fn registry_sync_fires_on_undeclared_read_through_helper() {
    let diags = fire("registry-schema-sync");
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("samples") && d.message.contains("fig99")),
        "undeclared `samples` read via helper not caught: {diags:?}"
    );
    // The declared reads must NOT be flagged.
    assert!(!diags.iter().any(|d| d.message.contains("\"max\"")));
    assert!(!diags.iter().any(|d| d.message.contains("\"seed\"")));
}

#[test]
fn registry_sync_quiet_on_shared_static_helper_and_bias() {
    assert_quiet("registry-schema-sync");
}

// --- L6 clock-confinement ----------------------------------------------

#[test]
fn clock_confinement_fires_on_busy_until_outside_domain() {
    let diags = fire("clock-confinement");
    assert!(
        diags
            .iter()
            .any(|d| d.path == "crates/store/src/benchrun.rs"
                && d.message.contains("uplink_busy_until")),
        "busy_until state outside arbiter/epoch not caught: {diags:?}"
    );
}

#[test]
fn clock_confinement_quiet_on_arbiter_epoch_comments_and_tests() {
    assert_quiet("clock-confinement");
}

// --- L7 unit-discipline ------------------------------------------------

#[test]
fn unit_discipline_fires_on_bare_f64_and_mixed_arithmetic() {
    let diags = fire("unit-discipline");
    // Signature checks: suffixed param and suffixed return.
    assert!(diags
        .iter()
        .any(|d| d.message.contains("`schedule_repair`") && d.message.contains("`volume_tb`")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("`sojourn_hours`") && d.message.contains("returns bare")));
    // Expression checks: TB-vs-MB/s and rate-vs-span mixing.
    assert!(diags
        .iter()
        .any(|d| d.message.contains("`wire_tb`") && d.message.contains("`bw_mbs`")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("`rate_per_year`") && d.message.contains("`window_hours`")));
}

#[test]
fn unit_discipline_quiet_on_newtypes_fields_and_same_class() {
    assert_quiet("unit-discipline");
}

// --- L8 panic-freedom --------------------------------------------------

#[test]
fn panic_freedom_fires_on_unwrap_expect_and_indexing() {
    let diags = fire("panic-freedom");
    assert!(diags.iter().any(|d| d.message.contains("`.unwrap()`")));
    assert!(diags.iter().any(|d| d.message.contains("`.expect()`")));
    assert!(diags.iter().any(|d| d.message.contains("indexing `xs[")));
}

#[test]
fn panic_freedom_quiet_on_annotated_sites_types_and_tests() {
    assert_quiet("panic-freedom");
}

// --- allow machinery ---------------------------------------------------

#[test]
fn allow_file_suppresses_matching_violation() {
    let diags = lints_at(&fixture("allow-roundtrip"));
    assert!(
        diags.is_empty(),
        "allowlisted violation must be suppressed, got: {diags:?}"
    );
}

#[test]
fn unused_allow_entry_is_reported() {
    let diags = lints_at(&fixture("unused-allow"));
    assert_eq!(
        diags.len(),
        1,
        "expected exactly the unused-allow: {diags:?}"
    );
    assert_eq!(diags[0].lint, "unused-allow");
    assert_eq!(diags[0].path, "lints.allow.toml");
}

#[test]
fn allow_file_round_trips_through_canonical_serialization() {
    let text =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("../lints.allow.toml"))
            .expect("repo allow file");
    let known = xtask::lints::known_names();
    let parsed = xtask::allow::AllowFile::parse(&text, &known).expect("repo allow file parses");
    let reparsed = xtask::allow::AllowFile::parse(&parsed.to_toml(), &known).unwrap();
    assert_eq!(parsed, reparsed);
    assert!(!parsed.entries.is_empty());
}

// --- the real tree -----------------------------------------------------

#[test]
fn repository_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits in the workspace root")
        .to_path_buf();
    let diags = xtask::run_lints(&root).expect("engine runs on the real tree");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
