//! L6 `clock-confinement`: the store's virtual-time determinism argument
//! rests on every `busy_until` clock living inside a single rack's clock
//! domain (`crates/store/src/arbiter.rs`) and being merged only at the
//! epoch barrier (`crates/store/src/epoch.rs`). A stray `busy_until`
//! field or mutation anywhere else in `crates/store/src/` would let two
//! shards observe or advance the same clock concurrently, and the
//! bit-identical op-log contract (`shards=N` vs the serial path) would
//! break in ways no single-threaded test can catch. The lint bans any
//! identifier ending in `busy_until` outside those two modules.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::Workspace;

const SCOPE: &str = "crates/store/src/";

/// Clock state lives in the rack clock domain; merges happen at the
/// epoch barrier. Nothing else touches `busy_until`.
const ALLOWED: &[&str] = &["crates/store/src/arbiter.rs", "crates/store/src/epoch.rs"];

/// L6: shard clock state and merges confined to arbiter.rs / epoch.rs.
pub struct ClockConfinement;

impl Lint for ClockConfinement {
    fn name(&self) -> &'static str {
        "clock-confinement"
    }

    fn description(&self) -> &'static str {
        "no busy_until clock state outside crates/store/src/{arbiter,epoch}.rs"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !file.rel.starts_with(SCOPE) || ALLOWED.contains(&file.rel.as_str()) {
                continue;
            }
            for (_, t) in file.code() {
                if let Tok::Ident(name) = &t.tok {
                    if name.ends_with("busy_until") {
                        out.push(Diagnostic {
                            lint: self.name(),
                            path: file.rel.clone(),
                            line: t.line,
                            message: format!(
                                "`{name}` outside the rack clock domain (arbiter.rs) and the \
                                 epoch barrier (epoch.rs): busy_until state touched anywhere \
                                 else can race across apply shards and break the bit-identical \
                                 op-log contract"
                            ),
                        });
                    }
                }
            }
        }
    }
}
