//! The architectural lint registry. Each lint encodes one invariant of
//! DESIGN.md's "Enforced invariants" section; `cargo xtask lint` runs all
//! of them over the workspace and fails on any un-suppressed finding.

mod clock_confinement;
mod det_iter;
mod panic_freedom;
mod registry_sync;
mod rng_confinement;
mod safety;
mod unit_discipline;
mod wall_clock;

use crate::diag::Diagnostic;
use crate::source::Workspace;

pub use clock_confinement::ClockConfinement;
pub use det_iter::DeterministicIteration;
pub use panic_freedom::PanicFreedom;
pub use registry_sync::RegistrySchemaSync;
pub use rng_confinement::RngConfinement;
pub use safety::SafetyComments;
pub use unit_discipline::UnitDiscipline;
pub use wall_clock::NoWallClock;

/// One architectural lint.
pub trait Lint {
    /// Stable lint name (used in diagnostics and `lints.allow.toml`).
    fn name(&self) -> &'static str;
    /// One-line description for `cargo xtask lint --list`.
    fn description(&self) -> &'static str;
    /// Scan the workspace, appending findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every registered lint, in documentation order (L1–L8).
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(RngConfinement),
        Box::new(NoWallClock),
        Box::new(DeterministicIteration),
        Box::new(SafetyComments),
        Box::new(RegistrySchemaSync),
        Box::new(ClockConfinement),
        Box::new(UnitDiscipline),
        Box::new(PanicFreedom),
    ]
}

/// Names of every registered lint plus the engine-internal
/// `unused-allow` pseudo-lint (valid in diagnostics, not in allow
/// entries — you cannot suppress the suppression checker).
pub fn known_names() -> Vec<&'static str> {
    all().iter().map(|l| l.name()).collect()
}
