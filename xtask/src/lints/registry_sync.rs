//! L5 `registry-schema-sync`: every parameter an experiment reads at run
//! time (`ctx.u64("…")`, `ctx.f64("…")`, `ctx.str("…")`, `ctx.bias()`)
//! must be declared in that experiment's `ExperimentInfo` schema. The
//! registry already turns *undeclared* keys from the command line into
//! exit-2 errors; this lint closes the converse hole — a read of an
//! undeclared key panics at run time, and only on the code path that
//! reaches it. The lint lifts that to a static check over
//! `crates/core/src/figures.rs`.
//!
//! The analysis is a small token-level parse of that one file: schema
//! statics (`params![…]` literals or shared `&[ParamSpec]` statics), the
//! `experiment!(Ty, INFO, run_fn)` registrations, and an
//! intra-file call graph from each run function through its helpers
//! (`heatmap_spec` et al.), unioning every reachable read.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, Token};
use crate::source::Workspace;
use std::collections::{BTreeMap, BTreeSet};

const TARGET: &str = "crates/core/src/figures.rs";

/// L5: run-time parameter reads must appear in the declared schema.
pub struct RegistrySchemaSync;

impl Lint for RegistrySchemaSync {
    fn name(&self) -> &'static str {
        "registry-schema-sync"
    }

    fn description(&self) -> &'static str {
        "every ctx parameter read in figures.rs must be declared in the experiment's schema"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(file) = ws.file(TARGET) else {
            return; // fixture trees without a registry have nothing to sync
        };
        let sig: Vec<&Token> = file.code().into_iter().map(|(_, t)| t).collect();
        let model = Model::parse(&sig);
        for exp in &model.experiments {
            let Some(info) = model.infos.get(&exp.info_static) else {
                out.push(Diagnostic {
                    lint: self.name(),
                    path: TARGET.to_string(),
                    line: exp.line,
                    message: format!(
                        "experiment!({}, {}, {}): no `static {}: ExperimentInfo` found",
                        exp.ty, exp.info_static, exp.run_fn, exp.info_static
                    ),
                });
                continue;
            };
            let declared = match &info.params {
                ParamsRef::Inline(list) => list.clone(),
                ParamsRef::Named(name) => match model.shared_params.get(name) {
                    Some(list) => list.clone(),
                    None => {
                        out.push(Diagnostic {
                            lint: self.name(),
                            path: TARGET.to_string(),
                            line: info.line,
                            message: format!(
                                "{}: params reference `{name}` which is not a parsable \
                                 `params![…]`/`&[ParamSpec…]` static",
                                exp.info_static
                            ),
                        });
                        continue;
                    }
                },
            };
            let declared: BTreeSet<&str> = declared.iter().map(String::as_str).collect();
            for read in model.reachable_reads(&exp.run_fn) {
                if !declared.contains(read.key.as_str()) {
                    out.push(Diagnostic {
                        lint: self.name(),
                        path: TARGET.to_string(),
                        line: read.line,
                        message: format!(
                            "`{}` (via `{}`): `ctx.{}(\"{}\")` reads a parameter missing from \
                             {}'s schema — declare it or drop the read",
                            info.exp_name, exp.run_fn, read.method, read.key, exp.info_static
                        ),
                    });
                }
            }
        }
    }
}

/// How an `ExperimentInfo.params` field is given.
enum ParamsRef {
    /// `params![…]` / `&[ParamSpec{…}]` literal — declared names.
    Inline(Vec<String>),
    /// Reference to a shared static (e.g. `HEATMAP_PARAMS`).
    Named(String),
}

struct InfoDef {
    exp_name: String,
    params: ParamsRef,
    line: u32,
}

struct ExperimentReg {
    ty: String,
    info_static: String,
    run_fn: String,
    line: u32,
}

#[derive(Debug, Clone)]
struct Read {
    method: String,
    key: String,
    line: u32,
}

struct FnDef {
    body: std::ops::Range<usize>,
}

struct Model {
    infos: BTreeMap<String, InfoDef>,
    shared_params: BTreeMap<String, Vec<String>>,
    experiments: Vec<ExperimentReg>,
    fns: BTreeMap<String, FnDef>,
    reads: BTreeMap<String, Vec<Read>>,
    calls: BTreeMap<String, BTreeSet<String>>,
}

impl Model {
    fn parse(sig: &[&Token]) -> Model {
        let mut model = Model {
            infos: BTreeMap::new(),
            shared_params: BTreeMap::new(),
            experiments: Vec::new(),
            fns: BTreeMap::new(),
            reads: BTreeMap::new(),
            calls: BTreeMap::new(),
        };
        model.scan_statics(sig);
        model.scan_registrations(sig);
        model.scan_fns(sig);
        model.scan_bodies(sig);
        model
    }

    fn scan_statics(&mut self, sig: &[&Token]) {
        let mut i = 0usize;
        while i < sig.len() {
            if !matches!(&sig[i].tok, Tok::Ident(s) if s == "static") {
                i += 1;
                continue;
            }
            let Some(Tok::Ident(static_name)) = sig.get(i + 1).map(|t| &t.tok) else {
                i += 1;
                continue;
            };
            let static_name = static_name.clone();
            let line = sig[i].line;
            let end = item_extent(sig, i);
            let body = &sig[i..end];
            if body
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "ExperimentInfo"))
            {
                if let Some(info) = parse_info(body, line) {
                    self.infos.insert(static_name, info);
                }
            } else if contains_param_list(body) {
                self.shared_params
                    .insert(static_name, parse_param_names(body));
            }
            i = end;
        }
    }

    fn scan_registrations(&mut self, sig: &[&Token]) {
        for i in 0..sig.len() {
            if !matches!(&sig[i].tok, Tok::Ident(s) if s == "experiment") {
                continue;
            }
            if !matches!(sig.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                continue;
            }
            // experiment!(Ty, INFO, path::to::run_fn);
            let mut idents = Vec::new();
            for t in &sig[i + 2..] {
                match &t.tok {
                    Tok::Punct(')') => break,
                    Tok::Ident(s) => idents.push(s.clone()),
                    _ => {}
                }
            }
            if idents.len() >= 3 {
                self.experiments.push(ExperimentReg {
                    ty: idents[0].clone(),
                    info_static: idents[1].clone(),
                    run_fn: idents.last().expect("len >= 3").clone(),
                    line: sig[i].line,
                });
            }
        }
    }

    fn scan_fns(&mut self, sig: &[&Token]) {
        let mut i = 0usize;
        while i < sig.len() {
            if !matches!(&sig[i].tok, Tok::Ident(s) if s == "fn") {
                i += 1;
                continue;
            }
            let Some(Tok::Ident(name)) = sig.get(i + 1).map(|t| &t.tok) else {
                i += 1;
                continue;
            };
            let name = name.clone();
            // Body = first `{…}` group before a top-level `;`.
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body = None;
            while j < sig.len() {
                match &sig[j].tok {
                    Tok::Punct('(' | '[') => depth += 1,
                    Tok::Punct(')' | ']') => depth -= 1,
                    Tok::Punct(';') if depth == 0 => break, // no body (trait decl)
                    Tok::Punct('{') if depth == 0 => {
                        let end = brace_extent(sig, j);
                        body = Some(j + 1..end.saturating_sub(1));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(body) = body {
                self.fns.insert(name, FnDef { body });
            }
            i += 2;
        }
    }

    fn scan_bodies(&mut self, sig: &[&Token]) {
        let names: BTreeSet<String> = self.fns.keys().cloned().collect();
        for (name, def) in &self.fns {
            let mut reads = Vec::new();
            let mut calls = BTreeSet::new();
            let r = def.body.clone();
            for j in r.clone() {
                // `.u64("k")` / `.f64("k")` / `.str("k")` / `.bias()`
                if matches!(&sig[j].tok, Tok::Punct('.')) {
                    if let Some(Tok::Ident(m)) = sig.get(j + 1).map(|t| &t.tok) {
                        let is_open =
                            matches!(sig.get(j + 2).map(|t| &t.tok), Some(Tok::Punct('(')));
                        if is_open && ["u64", "f64", "str"].contains(&m.as_str()) {
                            if let Some(Tok::Str(key)) = sig.get(j + 3).map(|t| &t.tok) {
                                reads.push(Read {
                                    method: m.clone(),
                                    key: key.clone(),
                                    line: sig[j + 1].line,
                                });
                            }
                        } else if is_open && m == "bias" {
                            reads.push(Read {
                                method: m.clone(),
                                key: "bias".to_string(),
                                line: sig[j + 1].line,
                            });
                        }
                    }
                }
                // Local helper call: `name(` not preceded by `.`.
                if let Tok::Ident(callee) = &sig[j].tok {
                    if names.contains(callee)
                        && callee != name
                        && matches!(sig.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                        && !matches!(
                            sig.get(j.wrapping_sub(1)).map(|t| &t.tok),
                            Some(Tok::Punct('.'))
                        )
                    {
                        calls.insert(callee.clone());
                    }
                }
            }
            self.reads.insert(name.clone(), reads);
            self.calls.insert(name.clone(), calls);
        }
    }

    /// Reads in `entry` and everything transitively called from it.
    fn reachable_reads(&self, entry: &str) -> Vec<Read> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![entry.to_string()];
        let mut out = Vec::new();
        while let Some(f) = stack.pop() {
            if !seen.insert(f.clone()) {
                continue;
            }
            if let Some(reads) = self.reads.get(&f) {
                out.extend(reads.iter().cloned());
            }
            if let Some(calls) = self.calls.get(&f) {
                stack.extend(calls.iter().cloned());
            }
        }
        out
    }
}

/// Extent of the item starting at `start` (a `static`): up to and
/// including the first `;` with all delimiters balanced.
fn item_extent(sig: &[&Token], start: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in sig[start..].iter().enumerate() {
        match &t.tok {
            Tok::Punct('{' | '(' | '[') => depth += 1,
            Tok::Punct('}' | ')' | ']') => depth -= 1,
            Tok::Punct(';') if depth == 0 => return start + off + 1,
            _ => {}
        }
    }
    sig.len()
}

/// Index one past the `}` matching the `{` at `open`.
fn brace_extent(sig: &[&Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in sig[open..].iter().enumerate() {
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return open + off + 1;
                }
            }
            _ => {}
        }
    }
    sig.len()
}

/// Does the token run contain a parameter list (`params![…]` macro or a
/// `ParamSpec` literal)?
fn contains_param_list(body: &[&Token]) -> bool {
    body.iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "ParamSpec"))
        || body.windows(2).any(|w| {
            matches!(&w[0].tok, Tok::Ident(s) if s == "params")
                && matches!(&w[1].tok, Tok::Punct('!'))
        })
}

/// Parse an `ExperimentInfo { name: "…", …, params: …, … }` literal.
fn parse_info(body: &[&Token], line: u32) -> Option<InfoDef> {
    let mut exp_name = None;
    let mut params = None;
    for (i, t) in body.iter().enumerate() {
        let Tok::Ident(field) = &t.tok else { continue };
        if !matches!(body.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            continue;
        }
        match field.as_str() {
            "name" if exp_name.is_none() => {
                if let Some(Tok::Str(s)) = body.get(i + 2).map(|t| &t.tok) {
                    exp_name = Some(s.clone());
                }
            }
            "params" if params.is_none() => {
                params = Some(match body.get(i + 2).map(|t| &t.tok) {
                    // `params: SHARED_STATIC`
                    Some(Tok::Ident(r)) if r != "params" => ParamsRef::Named(r.clone()),
                    // `params: params![…]` or `params: &[ParamSpec{…}]`
                    _ => ParamsRef::Inline(parse_param_names(&body[i + 2..])),
                });
            }
            _ => {}
        }
    }
    Some(InfoDef {
        exp_name: exp_name?,
        params: params?,
        line,
    })
}

/// Declared parameter names in a `params![(name, …), …]` macro call or a
/// `&[ParamSpec { name: "…", … }, …]` literal: the first string of each
/// top-level tuple, or each `name:` field. The macro form is checked
/// first because a shared static's *type* annotation (`&[ParamSpec]`)
/// also mentions `ParamSpec` and carries a bracket of its own.
fn parse_param_names(body: &[&Token]) -> Vec<String> {
    let mut names = Vec::new();
    // Macro tuple form: the `[` directly after `params !`; first string
    // inside each depth-1 paren group, stopping at the macro's `]`.
    let open = body.windows(3).position(|w| {
        matches!(&w[0].tok, Tok::Ident(s) if s == "params")
            && matches!(&w[1].tok, Tok::Punct('!'))
            && matches!(&w[2].tok, Tok::Punct('['))
    });
    let Some(open) = open.map(|i| i + 2) else {
        // Struct literal form: every `name: "…"` field.
        for (i, t) in body.iter().enumerate() {
            if matches!(&t.tok, Tok::Ident(s) if s == "name")
                && matches!(body.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
            {
                if let Some(Tok::Str(s)) = body.get(i + 2).map(|t| &t.tok) {
                    names.push(s.clone());
                }
            }
        }
        return names;
    };
    let mut depth = 0i32;
    let mut tuple_has_name = false;
    for t in &body[open..] {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct('(') => {
                depth += 1;
                if depth == 2 {
                    tuple_has_name = false;
                }
            }
            Tok::Punct(')') => depth -= 1,
            Tok::Str(s) if depth == 2 && !tuple_has_name => {
                names.push(s.clone());
                tuple_has_name = true;
            }
            _ => {}
        }
    }
    names
}
