//! L7 `unit-discipline`: the physically-dimensioned quantities the paper's
//! headline numbers are made of (repair volume in TB, bandwidth in MB/s,
//! repair time in hours, hazard rates per year) must flow through the
//! `mlec-units` newtypes, not bare `f64`s. Two checks over
//! `crates/{sim,analysis,store}/src/`:
//!
//! 1. **Signatures**: a `pub fn` whose parameter name or own name carries
//!    a dimension suffix (`_tb`, `_mbs`, `_hours`, `_per_year`, …) but is
//!    typed bare `f64` is an error — the suffix is exactly the contract
//!    the type system should own. Struct fields are deliberately *not*
//!    linted: suffixed-f64 records (`CatastrophicRepairPlan`,
//!    `SimConfig`, `DeclusteredChainSpec`) are documented rendering /
//!    parsing boundaries.
//! 2. **Expressions**: raw f64 arithmetic mixing two identifiers of
//!    *different* unit classes in one statement (`wire_tb / bw_mbs`,
//!    `rate_per_year * window_hours`) is flagged — that is the exact
//!    shape of the TB·MB/s and hours-vs-years bugs the newtypes exist to
//!    prevent. Same-class arithmetic (`a_tb + b_tb`) stays legal, and
//!    method calls (`.to_tb()`) are never operands.
//!
//! Deliberate boundary sites carry reasoned `lints.allow.toml` entries.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, Token};
use crate::source::Workspace;

const SCOPES: &[&str] = &[
    "crates/sim/src/",
    "crates/analysis/src/",
    "crates/store/src/",
];

/// The unit class a dimension-suffixed identifier claims, e.g.
/// `wire_tb` → `TB`. Two operands of different class in one raw-f64
/// expression is a lint finding; suffix families that name the same
/// physical unit (`_mbs`/`_mbps`) share a class.
fn unit_class(name: &str) -> Option<&'static str> {
    const SUFFIXES: &[(&str, &str)] = &[
        ("_per_year", "per-year"),
        ("_per_hour", "per-hour"),
        ("_per_day", "per-day"),
        ("_tb", "TB"),
        ("_gb", "GB"),
        ("_mbs", "MB/s"),
        ("_mbps", "MB/s"),
        ("_gbps", "Gbps"),
        ("_mb", "MB"),
        ("_kb", "KB"),
        ("_hours", "hours"),
        ("_years", "years"),
        ("_secs", "seconds"),
    ];
    for (suffix, class) in SUFFIXES {
        if name.ends_with(suffix) || name == &suffix[1..] {
            return Some(class);
        }
    }
    None
}

/// L7: dimension-suffixed quantities must be typed, not bare f64.
pub struct UnitDiscipline;

impl Lint for UnitDiscipline {
    fn name(&self) -> &'static str {
        "unit-discipline"
    }

    fn description(&self) -> &'static str {
        "dimension-suffixed pub fn params/returns must not be bare f64; no mixed-unit f64 arithmetic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !SCOPES.iter().any(|s| file.rel.starts_with(s)) {
                continue;
            }
            let code: Vec<(usize, &Token)> = file.code();
            check_signatures(self.name(), &file.rel, &code, out);
            check_expressions(self.name(), &file.rel, &code, out);
        }
    }
}

/// Is the significant token at `i` the start of a `pub … fn` item? If so,
/// return the index of the `fn` keyword.
fn pub_fn_at(code: &[(usize, &Token)], i: usize) -> Option<usize> {
    if !matches!(&code[i].1.tok, Tok::Ident(s) if s == "pub") {
        return None;
    }
    let mut j = i + 1;
    // `pub(crate)` / `pub(in …)` visibility scope.
    if matches!(code.get(j).map(|t| &t.1.tok), Some(Tok::Punct('('))) {
        let mut depth = 0usize;
        while let Some((_, t)) = code.get(j) {
            match t.tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Qualifiers between visibility and `fn`.
    while let Some((_, t)) = code.get(j) {
        match &t.tok {
            Tok::Ident(s) if s == "fn" => return Some(j),
            Tok::Ident(s) if matches!(s.as_str(), "const" | "unsafe" | "async" | "extern") => {
                j += 1;
            }
            Tok::Str(_) => j += 1, // extern "C"
            _ => return None,
        }
    }
    None
}

/// Check every `pub fn` signature: suffixed param names typed bare `f64`,
/// and suffixed fn names returning bare `f64`.
fn check_signatures(
    lint: &'static str,
    rel: &str,
    code: &[(usize, &Token)],
    out: &mut Vec<Diagnostic>,
) {
    let mut i = 0usize;
    while i < code.len() {
        let Some(fn_kw) = pub_fn_at(code, i) else {
            i += 1;
            continue;
        };
        let Some((_, name_tok)) = code.get(fn_kw + 1) else {
            break;
        };
        let Tok::Ident(fn_name) = &name_tok.tok else {
            i = fn_kw + 1;
            continue;
        };
        let mut j = fn_kw + 2;
        // Skip generic parameters `<…>`.
        if matches!(code.get(j).map(|t| &t.1.tok), Some(Tok::Punct('<'))) {
            let mut depth = 0usize;
            while let Some((_, t)) = code.get(j) {
                match t.tok {
                    Tok::Punct('<') => depth += 1,
                    Tok::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !matches!(code.get(j).map(|t| &t.1.tok), Some(Tok::Punct('('))) {
            i = j;
            continue;
        }
        // Collect the parameter list, split on top-level commas.
        let mut depth = 0usize;
        let mut params: Vec<Vec<&Token>> = vec![Vec::new()];
        let params_end;
        loop {
            let Some((_, t)) = code.get(j) else {
                return; // truncated file
            };
            match t.tok {
                Tok::Punct('(' | '[' | '{' | '<') => {
                    if depth > 0 {
                        params.last_mut().expect("non-empty").push(t);
                    }
                    depth += 1;
                }
                Tok::Punct(')' | ']' | '}' | '>') => {
                    depth -= 1;
                    if depth == 0 {
                        params_end = j;
                        break;
                    }
                    params.last_mut().expect("non-empty").push(t);
                }
                Tok::Punct(',') if depth == 1 => params.push(Vec::new()),
                _ => {
                    if depth > 0 {
                        params.last_mut().expect("non-empty").push(t);
                    }
                }
            }
            j += 1;
        }
        for param in &params {
            // `name : type` — the name is the last ident before the first
            // top-level `:` (handles `mut x: f64`); `self` params have no
            // colon and are skipped.
            let Some(colon) = param.iter().position(|t| t.tok == Tok::Punct(':')) else {
                continue;
            };
            let name = param[..colon].iter().rev().find_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            });
            let (Some(name), Some(class)) = (name, name.and_then(|n| unit_class(n))) else {
                continue;
            };
            let ty = &param[colon + 1..];
            if matches!(ty, [t] if t.tok == Tok::Ident("f64".to_string())) {
                out.push(Diagnostic {
                    lint,
                    path: rel.to_string(),
                    line: param[colon].line,
                    message: format!(
                        "pub fn `{fn_name}` parameter `{name}` claims unit {class} in its \
                         name but is typed bare `f64`; use the `mlec-units` newtype \
                         (or add a reasoned lints.allow.toml boundary entry)"
                    ),
                });
            }
        }
        // Return type: `-> f64` with a dimension-suffixed fn name.
        if let Some(class) = unit_class(fn_name) {
            let mut r = params_end + 1;
            if matches!(code.get(r).map(|t| &t.1.tok), Some(Tok::Punct('-')))
                && matches!(code.get(r + 1).map(|t| &t.1.tok), Some(Tok::Punct('>')))
            {
                r += 2;
                let ret_f64 =
                    matches!(code.get(r).map(|t| &t.1.tok), Some(Tok::Ident(s)) if s == "f64");
                let terminated = match code.get(r + 1).map(|t| &t.1.tok) {
                    Some(Tok::Punct('{' | ';')) => true,
                    Some(Tok::Ident(s)) if s == "where" => true,
                    _ => false,
                };
                if ret_f64 && terminated {
                    out.push(Diagnostic {
                        lint,
                        path: rel.to_string(),
                        line: name_tok.line,
                        message: format!(
                            "pub fn `{fn_name}` claims unit {class} in its name but \
                             returns bare `f64`; return the `mlec-units` newtype \
                             (or add a reasoned lints.allow.toml boundary entry)"
                        ),
                    });
                }
            }
        }
        i = params_end + 1;
    }
}

/// Check for raw f64 arithmetic mixing two different unit classes inside
/// one statement. An operand is a dimension-suffixed identifier adjacent
/// to an arithmetic operator (`+ - * /`) that is not a call, a macro, or
/// a struct-literal field name.
fn check_expressions(
    lint: &'static str,
    rel: &str,
    code: &[(usize, &Token)],
    out: &mut Vec<Diagnostic>,
) {
    let mut stmt: Vec<(usize, &Token)> = Vec::new();
    for k in 0..code.len() {
        let (_, t) = code[k];
        if matches!(t.tok, Tok::Punct(';' | '{' | '}' | ',')) {
            flag_mixed(lint, rel, &stmt, code, out);
            stmt.clear();
        } else {
            stmt.push((k, t));
        }
    }
    flag_mixed(lint, rel, &stmt, code, out);
}

fn flag_mixed(
    lint: &'static str,
    rel: &str,
    stmt: &[(usize, &Token)],
    code: &[(usize, &Token)],
    out: &mut Vec<Diagnostic>,
) {
    let mut operands: Vec<(&str, &str, u32)> = Vec::new(); // (name, class, line)
    for &(k, t) in stmt {
        let Tok::Ident(name) = &t.tok else { continue };
        let Some(class) = unit_class(name) else {
            continue;
        };
        let next = code.get(k + 1).map(|t| &t.1.tok);
        let next2 = code.get(k + 2).map(|t| &t.1.tok);
        // Calls `foo_tb(…)`, macros `foo_tb!`, struct-literal fields /
        // declarations `foo_tb:` are not value operands.
        if matches!(next, Some(Tok::Punct('(' | '!' | ':'))) {
            continue;
        }
        let prev = k.checked_sub(1).and_then(|p| code.get(p)).map(|t| &t.1.tok);
        let op_before = matches!(prev, Some(Tok::Punct('+' | '-' | '*' | '/')));
        // `-> foo_tb` is an arrow, not a subtraction.
        let arrow_after =
            matches!(next, Some(Tok::Punct('-'))) && matches!(next2, Some(Tok::Punct('>')));
        let op_after = matches!(next, Some(Tok::Punct('+' | '-' | '*' | '/'))) && !arrow_after;
        if op_before || op_after {
            operands.push((name, class, t.line));
        }
    }
    let Some((first_name, first_class, first_line)) = operands.first().copied() else {
        return;
    };
    if let Some((other_name, other_class, _)) = operands.iter().find(|(_, c, _)| *c != first_class)
    {
        out.push(Diagnostic {
            lint,
            path: rel.to_string(),
            line: first_line,
            message: format!(
                "raw f64 arithmetic mixes unit classes in one expression: \
                 `{first_name}` ({first_class}) with `{other_name}` ({other_class}); \
                 route the conversion through `mlec-units` \
                 (or add a reasoned lints.allow.toml boundary entry)"
            ),
        });
    }
}
