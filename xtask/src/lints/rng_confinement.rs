//! L1 `rng-confinement`: the hazard kernel (`crates/sim/src/kernel.rs`)
//! is the only production code in the simulators allowed to touch RNG
//! construction or likelihood accounting. Outside it, any mention of a
//! `ChaCha` generator, `SeedableRng`, `sample_exponential`, or `PathWeight`
//! in `crates/{sim,analysis,core}` is a violation: scattered RNG streams
//! are how draw-order (and with it every fixed-seed golden and the
//! exactness of importance weights) silently breaks.
//!
//! Definition sites (`failure.rs`, `importance.rs`) and the trace
//! synthesizer are suppressed in `lints.allow.toml` with reasons, not
//! hardcoded here.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::Workspace;

const FORBIDDEN: &[&str] = &[
    "ChaCha8Rng",
    "ChaCha12Rng",
    "ChaCha20Rng",
    "SeedableRng",
    "sample_exponential",
    "PathWeight",
];

const SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/analysis/src/",
    "crates/core/src/",
    "crates/store/src/",
];

/// The kernel owns randomness; everything else asks the kernel.
const KERNEL: &str = "crates/sim/src/kernel.rs";

/// L1: RNG construction and likelihood accounting confined to the kernel.
pub struct RngConfinement;

impl Lint for RngConfinement {
    fn name(&self) -> &'static str {
        "rng-confinement"
    }

    fn description(&self) -> &'static str {
        "no ChaCha/SeedableRng/sample_exponential/PathWeight outside crates/sim/src/kernel.rs"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if file.rel == KERNEL || !SCOPE.iter().any(|p| file.rel.starts_with(p)) {
                continue;
            }
            for (_, t) in file.code() {
                if let Tok::Ident(name) = &t.tok {
                    if FORBIDDEN.contains(&name.as_str()) {
                        out.push(Diagnostic {
                            lint: self.name(),
                            path: file.rel.clone(),
                            line: t.line,
                            message: format!(
                                "`{name}` outside the hazard kernel ({KERNEL}): RNG streams \
                                 and likelihood-ratio accounting are confined to the kernel \
                                 so draw order and importance weights stay exact"
                            ),
                        });
                    }
                }
            }
        }
    }
}
