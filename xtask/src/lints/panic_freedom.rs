//! L8 `panic-freedom`: the data plane (`crates/store/src/`,
//! `crates/sim/src/`) must not panic on untrusted input or mid-campaign
//! state. Every `.unwrap()`, `.expect(…)`, and direct slice/array index
//! (`xs[i]`, `xs[a..b]`) outside `#[cfg(test)]` regions requires an
//! attached `// PANICS:` comment justifying why the panic is unreachable
//! (or is the correct response, e.g. a poisoned invariant) — mirroring
//! L4's `// SAFETY:` contract for `unsafe`.
//!
//! Attachment rule (same as L4): walking backwards from the panic site, a
//! comment containing `PANICS` must appear before any statement boundary
//! (`;`, `{`, `}`) — i.e. the comment sits on the statement introducing
//! the panic. One comment covers every panic site in its statement.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::{SourceFile, Workspace};

const SCOPES: &[&str] = &["crates/store/src/", "crates/sim/src/"];

/// L8: data-plane panics need an attached `// PANICS:` justification.
pub struct PanicFreedom;

impl Lint for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/indexing in the store+sim data plane needs a // PANICS: comment"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !SCOPES.iter().any(|s| file.rel.starts_with(s)) {
                continue;
            }
            for (i, t) in file.code() {
                let what = match &t.tok {
                    // `.unwrap()` / `.expect(` — method position only.
                    Tok::Ident(s) if (s == "unwrap" || s == "expect") => {
                        let dotted = matches!(
                            i.checked_sub(1)
                                .and_then(|p| file.tokens.get(p))
                                .map(|t| &t.tok),
                            Some(Tok::Punct('.'))
                        );
                        let called = matches!(
                            file.tokens.get(i + 1).map(|t| &t.tok),
                            Some(Tok::Punct('('))
                        );
                        if dotted && called {
                            Some(format!("`.{s}()`"))
                        } else {
                            None
                        }
                    }
                    // Direct indexing: `[` right after a value (identifier,
                    // call result, or another index). Attribute brackets
                    // (`#[…]`), types (`&[T]`), macros (`vec![…]`), and
                    // array literals never follow a value token.
                    Tok::Punct('[') => {
                        let prev = i.checked_sub(1).and_then(|p| file.tokens.get(p));
                        match prev.map(|t| &t.tok) {
                            Some(Tok::Ident(name))
                                if !matches!(
                                    name.as_str(),
                                    "mut" | "dyn" | "return" | "break" | "in" | "as"
                                ) =>
                            {
                                Some(format!("indexing `{name}[…]`"))
                            }
                            Some(Tok::Punct(')' | ']')) => Some("indexing `…[…]`".to_string()),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                if let Some(what) = what {
                    if !has_attached_panics_comment(file, i) {
                        out.push(Diagnostic {
                            lint: self.name(),
                            path: file.rel.clone(),
                            line: t.line,
                            message: format!(
                                "{what} in the data plane without an attached `// PANICS:` \
                                 comment justifying why it cannot fire"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Walk backwards from the panic site at `idx`: accept if a comment
/// containing `PANICS` appears before any `;`/`{`/`}`.
fn has_attached_panics_comment(file: &SourceFile, idx: usize) -> bool {
    for t in file.tokens[..idx].iter().rev() {
        match &t.tok {
            Tok::Comment(text) if text.contains("PANICS") => return true,
            Tok::Comment(_) => {}
            Tok::Punct(';' | '{' | '}') => return false,
            _ => {}
        }
    }
    false
}
