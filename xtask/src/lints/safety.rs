//! L4 `safety-comment`: every `unsafe` block, function, impl, or trait
//! must carry an attached `// SAFETY:` comment (or `# Safety` doc
//! section) justifying it, and every crate containing unsafe code must
//! opt into `#![deny(unsafe_op_in_unsafe_fn)]` so operations inside
//! `unsafe fn` still need their own block and justification.
//!
//! Attachment rule: walking backwards from the `unsafe` keyword, a
//! comment containing the marker must appear before any statement
//! boundary (`;`, `{`, `}`) — i.e. the comment sits on the statement or
//! item that introduces the unsafe code. Test code is policed too:
//! unsound test scaffolding invalidates exactly the guarantees the
//! suite exists to check.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::{SourceFile, Workspace};
use std::collections::BTreeMap;

/// L4: SAFETY comments on unsafe code + `unsafe_op_in_unsafe_fn`.
pub struct SafetyComments;

impl Lint for SafetyComments {
    fn name(&self) -> &'static str {
        "safety-comment"
    }

    fn description(&self) -> &'static str {
        "unsafe code needs // SAFETY: comments and #![deny(unsafe_op_in_unsafe_fn)]"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        // crate root rel-path -> first file containing unsafe code.
        let mut unsafe_crates: BTreeMap<String, String> = BTreeMap::new();
        for file in &ws.files {
            for (i, t) in file.tokens.iter().enumerate() {
                if matches!(&t.tok, Tok::Ident(s) if s == "unsafe") {
                    if let Some(root) = crate_root(&file.rel) {
                        unsafe_crates
                            .entry(root)
                            .or_insert_with(|| file.rel.clone());
                    }
                    if !has_attached_safety_comment(file, i) {
                        out.push(Diagnostic {
                            lint: self.name(),
                            path: file.rel.clone(),
                            line: t.line,
                            message: "`unsafe` without an attached `// SAFETY:` comment \
                                      justifying why the invariants hold"
                                .to_string(),
                        });
                    }
                }
            }
        }
        for (root, witness) in unsafe_crates {
            let denied = ws.file(&root).is_some_and(denies_unsafe_op);
            if !denied {
                out.push(Diagnostic {
                    lint: self.name(),
                    path: root.clone(),
                    line: 1,
                    message: format!(
                        "crate contains unsafe code ({witness}) but its root does not declare \
                         #![deny(unsafe_op_in_unsafe_fn)]"
                    ),
                });
            }
        }
    }
}

/// The crate-root file owning `rel` (`crates/X/src/lib.rs` or
/// `src/lib.rs`).
fn crate_root(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let krate = rest.split('/').next()?;
        return Some(format!("crates/{krate}/src/lib.rs"));
    }
    if rel.starts_with("src/") {
        return Some("src/lib.rs".to_string());
    }
    None
}

/// Does the crate root carry `deny(... unsafe_op_in_unsafe_fn ...)`?
fn denies_unsafe_op(root: &SourceFile) -> bool {
    let sig: Vec<&Tok> = root
        .tokens
        .iter()
        .map(|t| &t.tok)
        .filter(|t| !matches!(t, Tok::Comment(_)))
        .collect();
    sig.iter().enumerate().any(|(i, t)| {
        matches!(t, Tok::Ident(s) if s == "unsafe_op_in_unsafe_fn")
            && sig[i.saturating_sub(4)..i]
                .iter()
                .any(|p| matches!(p, Tok::Ident(s) if s == "deny"))
    })
}

/// Walk backwards from the `unsafe` token at `idx`: accept if a comment
/// containing `SAFETY` or `# Safety` appears before any `;`/`{`/`}`.
fn has_attached_safety_comment(file: &SourceFile, idx: usize) -> bool {
    for t in file.tokens[..idx].iter().rev() {
        match &t.tok {
            Tok::Comment(text) if text.contains("SAFETY") || text.contains("# Safety") => {
                return true;
            }
            Tok::Comment(_) => {}
            Tok::Punct(';' | '{' | '}') => return false,
            _ => {}
        }
    }
    false
}
