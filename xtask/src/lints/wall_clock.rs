//! L2 `no-wall-clock`: result-producing code must be a pure function of
//! its seed and parameters. Wall-clock reads (`std::time::Instant`,
//! `SystemTime`) and environment-dependent entropy (`env::var`,
//! `thread_rng`, `OsRng`, `from_entropy`) make reruns incomparable and
//! break bit-identical goldens. The deliberate timing surfaces — the
//! Fig 11 measured-mode kernel timer, the microbench harness, the
//! runner's telemetry stopwatch — are suppressed in `lints.allow.toml`
//! with reasons.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::Workspace;

const FORBIDDEN: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "OsRng",
    "from_entropy",
];

/// `var`/`var_os` are only violations as `env::var` / `env::var_os`.
const ENV_READS: &[&str] = &["var", "var_os"];

/// L2: no wall clock or ambient entropy in result paths.
pub struct NoWallClock;

impl Lint for NoWallClock {
    fn name(&self) -> &'static str {
        "no-wall-clock"
    }

    fn description(&self) -> &'static str {
        "no Instant/SystemTime/env-entropy in result-producing code (timing surfaces allowlisted)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !file.rel.starts_with("crates/") && !file.rel.starts_with("src/") {
                continue;
            }
            let code = file.code();
            for (pos, (_, t)) in code.iter().enumerate() {
                let Tok::Ident(name) = &t.tok else { continue };
                if FORBIDDEN.contains(&name.as_str()) {
                    out.push(Diagnostic {
                        lint: self.name(),
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`{name}`: results must be a pure function of seed and parameters; \
                             wall-clock and ambient entropy belong only on allowlisted timing \
                             surfaces"
                        ),
                    });
                } else if ENV_READS.contains(&name.as_str()) && env_qualified(&code, pos) {
                    out.push(Diagnostic {
                        lint: self.name(),
                        path: file.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`env::{name}`: environment reads make results depend on ambient \
                             process state"
                        ),
                    });
                }
            }
        }
    }
}

/// Is the identifier at `pos` preceded by `env ::`?
fn env_qualified(code: &[(usize, &crate::lexer::Token)], pos: usize) -> bool {
    if pos < 3 {
        return false;
    }
    matches!(&code[pos - 1].1.tok, Tok::Punct(':'))
        && matches!(&code[pos - 2].1.tok, Tok::Punct(':'))
        && matches!(&code[pos - 3].1.tok, Tok::Ident(s) if s == "env")
}
