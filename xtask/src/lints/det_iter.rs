//! L3 `deterministic-iteration`: `std::collections::HashMap`/`HashSet`
//! iteration order is randomized per process (`SipHash` with a random
//! key), so any result that iterates one — even only to sum floats —
//! silently loses bit-identical reproducibility. Rather than attempt
//! reachability analysis, the lint bans the types outright in every
//! crate that produces results (`sim`, `analysis`, `core`, `topology`):
//! `BTreeMap`/`BTreeSet` iterate in key order, and the few lookup-only
//! maps that genuinely need hashing can be suppressed in
//! `lints.allow.toml` with a reason.

use super::Lint;
use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::source::Workspace;

const FORBIDDEN: &[&str] = &["HashMap", "HashSet"];

const SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/analysis/src/",
    "crates/core/src/",
    "crates/topology/src/",
    "crates/store/src/",
];

/// L3: no nondeterministically ordered collections in result paths.
pub struct DeterministicIteration;

impl Lint for DeterministicIteration {
    fn name(&self) -> &'static str {
        "deterministic-iteration"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet in result-producing crates (iteration order breaks goldens)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !SCOPE.iter().any(|p| file.rel.starts_with(p)) {
                continue;
            }
            for (_, t) in file.code() {
                if let Tok::Ident(name) = &t.tok {
                    if FORBIDDEN.contains(&name.as_str()) {
                        out.push(Diagnostic {
                            lint: self.name(),
                            path: file.rel.clone(),
                            line: t.line,
                            message: format!(
                                "`{name}` has randomized iteration order; use BTreeMap/BTreeSet \
                                 (or sorted iteration) so fixed-seed results stay bit-identical"
                            ),
                        });
                    }
                }
            }
        }
    }
}
