//! The checked-in suppression file `lints.allow.toml`: every entry names
//! a lint, a path (exact file, or a `/`-terminated directory prefix) and
//! a mandatory reason. Suppressions that match nothing are themselves
//! diagnostics, so the file can only shrink as violations are fixed.
//!
//! The format is a deliberately tiny TOML subset (the build environment
//! has no `toml` crate): `[[allow]]` tables with `key = "value"` string
//! pairs and `#` comments.

use crate::diag::Diagnostic;

/// One suppression entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint name the entry silences.
    pub lint: String,
    /// Exact workspace-relative file, or a directory prefix ending in `/`.
    pub path: String,
    /// Why the suppression is sound (mandatory).
    pub reason: String,
}

impl AllowEntry {
    fn matches(&self, d: &Diagnostic) -> bool {
        self.lint == d.lint
            && (d.path == self.path || (self.path.ends_with('/') && d.path.starts_with(&self.path)))
    }
}

/// The parsed allow file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowFile {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A parse failure, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    /// 1-based line of the offending input.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lints.allow.toml:{}: {}", self.line, self.message)
    }
}

impl AllowFile {
    /// Parse the TOML-subset text. `known_lints` validates entry names so
    /// a typo cannot silently suppress nothing.
    pub fn parse(text: &str, known_lints: &[&str]) -> Result<AllowFile, AllowParseError> {
        let mut entries: Vec<[Option<String>; 3]> = Vec::new();
        let mut entry_lines: Vec<u32> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                entries.push([None, None, None]);
                entry_lines.push(lineno);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("expected `key = \"value\"` or `[[allow]]`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("value for `{key}` must be a double-quoted string"),
                });
            };
            let Some(entry) = entries.last_mut() else {
                return Err(AllowParseError {
                    line: lineno,
                    message: "key before the first [[allow]] table".to_string(),
                });
            };
            let slot = match key {
                "lint" => 0,
                "path" => 1,
                "reason" => 2,
                other => {
                    return Err(AllowParseError {
                        line: lineno,
                        message: format!("unknown key `{other}` (expected lint/path/reason)"),
                    })
                }
            };
            if entry[slot].is_some() {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("duplicate key `{key}`"),
                });
            }
            entry[slot] = Some(value.to_string());
        }
        let mut out = AllowFile::default();
        for (entry, lineno) in entries.into_iter().zip(entry_lines) {
            let [lint, path, reason] = entry;
            let (Some(lint), Some(path), Some(reason)) = (lint, path, reason) else {
                return Err(AllowParseError {
                    line: lineno,
                    message: "entry must set lint, path, and reason".to_string(),
                });
            };
            if !known_lints.contains(&lint.as_str()) {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("unknown lint `{lint}` (known: {})", known_lints.join(", ")),
                });
            }
            if reason.trim().is_empty() {
                return Err(AllowParseError {
                    line: lineno,
                    message: "reason must not be empty".to_string(),
                });
            }
            out.entries.push(AllowEntry { lint, path, reason });
        }
        Ok(out)
    }

    /// Serialize back to the canonical on-disk form. `parse(to_toml(x)) ==
    /// x` (the round-trip test pins this).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# Checked-in lint suppressions for `cargo xtask lint`.\n\
             # Every entry must carry a reason; entries matching nothing are errors.\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "\n[[allow]]\nlint = \"{}\"\npath = \"{}\"\nreason = \"{}\"\n",
                e.lint, e.path, e.reason
            ));
        }
        out
    }

    /// Split `diags` into kept diagnostics and suppressed ones, appending
    /// an `unused-allow` diagnostic for every entry that matched nothing.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        for d in diags {
            let mut suppressed = false;
            for (i, e) in self.entries.iter().enumerate() {
                if e.matches(&d) {
                    used[i] = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                kept.push(d);
            }
        }
        for (e, was_used) in self.entries.iter().zip(&used) {
            if !was_used {
                kept.push(Diagnostic {
                    lint: "unused-allow",
                    path: "lints.allow.toml".to_string(),
                    line: 1,
                    message: format!(
                        "allow entry (lint = {}, path = {}) matched no diagnostic; remove it",
                        e.lint, e.path
                    ),
                });
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOWN: &[&str] = &["no-wall-clock", "deterministic-iteration"];

    fn diag(lint: &'static str, path: &str) -> Diagnostic {
        Diagnostic {
            lint,
            path: path.to_string(),
            line: 1,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_apply_and_prefix_match() {
        let text = "\n# c\n[[allow]]\nlint = \"no-wall-clock\"\npath = \"crates/bench/\"\nreason = \"timing surface\"\n";
        let allow = AllowFile::parse(text, KNOWN).unwrap();
        let kept = allow.apply(vec![
            diag("no-wall-clock", "crates/bench/src/microbench.rs"),
            diag("no-wall-clock", "crates/sim/src/engine.rs"),
        ]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "crates/sim/src/engine.rs");
    }

    #[test]
    fn unused_entry_is_a_diagnostic() {
        let text =
            "[[allow]]\nlint = \"no-wall-clock\"\npath = \"crates/x/src/y.rs\"\nreason = \"r\"\n";
        let allow = AllowFile::parse(text, KNOWN).unwrap();
        let kept = allow.apply(vec![]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, "unused-allow");
    }

    #[test]
    fn unknown_lint_and_missing_reason_are_errors() {
        let bad = "[[allow]]\nlint = \"nope\"\npath = \"p\"\nreason = \"r\"\n";
        assert!(AllowFile::parse(bad, KNOWN).is_err());
        let missing = "[[allow]]\nlint = \"no-wall-clock\"\npath = \"p\"\n";
        assert!(AllowFile::parse(missing, KNOWN).is_err());
    }

    #[test]
    fn round_trips() {
        let allow = AllowFile {
            entries: vec![AllowEntry {
                lint: "deterministic-iteration".to_string(),
                path: "crates/a/src/b.rs".to_string(),
                reason: "lookup-only map".to_string(),
            }],
        };
        let reparsed = AllowFile::parse(&allow.to_toml(), KNOWN).unwrap();
        assert_eq!(reparsed, allow);
    }
}
