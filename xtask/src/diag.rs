//! Lint diagnostics and their machine-readable JSON rendering.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint name (`rng-confinement`, …).
    pub lint: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as the machine-readable report consumed by CI
/// (`cargo xtask lint --json`, archived as a build artifact).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            json_escape(d.lint),
            json_escape(&d.path),
            d.line,
            json_escape(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}\n", diags.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_counted() {
        let diags = vec![Diagnostic {
            lint: "no-wall-clock",
            path: "crates/sim/src/a.rs".to_string(),
            line: 3,
            message: "found \"Instant\"\nhere".to_string(),
        }];
        let json = to_json(&diags);
        assert!(json.contains(r#"\"Instant\""#));
        assert!(json.contains(r"\n"));
        assert!(json.contains("\"count\": 1"));
    }
}
