//! In-tree static analysis for the mlec workspace.
//!
//! `cargo xtask lint` runs a registry of architectural lints (L1–L5, see
//! DESIGN.md "Enforced invariants") over the production sources and fails
//! on any finding not suppressed — with a reason — in `lints.allow.toml`.
//!
//! The engine is dependency-free by necessity (the build environment has
//! no crates.io registry): a minimal hand-rolled lexer ([`lexer`]) stands
//! in for `syn`, and the lints operate on token streams with
//! `#[cfg(test)]` masking rather than a full AST. That is enough for the
//! invariants enforced here, which are all "this name must not appear in
//! this scope" or small structural patterns.

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod source;

use diag::Diagnostic;
use std::path::Path;

/// Engine-level failure (bad workspace, malformed allow file) — distinct
/// from lint findings, and mapped to exit code 2 by the CLI.
#[derive(Debug)]
pub struct EngineError(pub String);

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Run every registered lint over the workspace at `root`, apply the
/// suppressions in `<root>/lints.allow.toml` (if present), and return the
/// surviving diagnostics sorted by path, line, and lint name.
pub fn run_lints(root: &Path) -> Result<Vec<Diagnostic>, EngineError> {
    run_lints_scoped(root, None)
}

/// Like [`run_lints`], optionally scoped to a set of workspace-relative
/// file paths (the `--changed` mode). Lints still scan the *whole*
/// workspace — cross-file lints (registry sync) need global context — but
/// only diagnostics landing in the given files are reported, and the
/// `unused-allow` pseudo-lint is silenced (entries for untouched files
/// are unknowable from a partial view).
pub fn run_lints_scoped(
    root: &Path,
    only_files: Option<&[String]>,
) -> Result<Vec<Diagnostic>, EngineError> {
    let ws = source::Workspace::load(root)
        .map_err(|e| EngineError(format!("loading workspace at {}: {e}", root.display())))?;
    let mut diags = Vec::new();
    for lint in lints::all() {
        lint.check(&ws, &mut diags);
    }
    let allow_path = root.join("lints.allow.toml");
    let known = lints::known_names();
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| EngineError(format!("reading {}: {e}", allow_path.display())))?;
        allow::AllowFile::parse(&text, &known).map_err(|e| EngineError(e.to_string()))?
    } else {
        allow::AllowFile::default()
    };
    let mut kept = allow.apply(diags);
    if let Some(files) = only_files {
        kept.retain(|d| d.lint != "unused-allow" && files.iter().any(|f| f == &d.path));
    }
    kept.sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    Ok(kept)
}

/// Workspace-relative paths of files changed against `HEAD` plus
/// untracked files — the scope of `cargo xtask lint --changed`.
pub fn git_changed_files(root: &Path) -> Result<Vec<String>, EngineError> {
    let mut files = Vec::new();
    for args in [
        &["diff", "--name-only", "HEAD"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let out = std::process::Command::new("git")
            .args(args)
            .current_dir(root)
            .output()
            .map_err(|e| EngineError(format!("running git {}: {e}", args.join(" "))))?;
        if !out.status.success() {
            return Err(EngineError(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            )));
        }
        files.extend(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .filter(|l| !l.is_empty())
                .map(str::to_string),
        );
    }
    files.sort();
    files.dedup();
    Ok(files)
}
