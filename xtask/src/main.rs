//! `cargo xtask` — workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo xtask lint [--json] [--list] [--changed] [--root DIR]
//! ```
//!
//! Exit codes: 0 = clean, 1 = lint violations, 2 = usage or engine error
//! (unreadable tree, malformed `lints.allow.toml`).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask lint [--json] [--list] [--changed] [--root DIR]

  --json       emit the machine-readable diagnostics report on stdout
  --list       list registered lints and exit
  --changed    report only findings in files changed vs git HEAD
               (plus untracked files); unused-allow checking is skipped
  --root DIR   lint the workspace at DIR (default: CARGO manifest parent,
               falling back to the current directory)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "xtask: unknown subcommand {:?}\n{USAGE}",
                other.unwrap_or("<none>")
            );
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut changed = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--changed" => changed = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xtask: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if list {
        for l in xtask::lints::all() {
            println!("{:<24} {}", l.name(), l.description());
        }
        return ExitCode::SUCCESS;
    }
    // When run as `cargo xtask …`, cwd is wherever the user invoked
    // cargo; the workspace root is the parent of this crate's manifest.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| {
                PathBuf::from(d)
                    .parent()
                    .map(PathBuf::from)
                    .unwrap_or_default()
            })
            .filter(|p| p.join("Cargo.toml").is_file())
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let scope = if changed {
        match xtask::git_changed_files(&root) {
            Ok(files) => Some(files),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let diags = match xtask::run_lints_scoped(&root, scope.as_deref()) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", xtask::diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        if !json {
            let mode = if changed { " over changed files" } else { "" };
            println!(
                "xtask lint: clean ({} lints{mode})",
                xtask::lints::all().len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!(
                "xtask lint: {} violation{} (suppress with a reasoned entry in lints.allow.toml)",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
        }
        ExitCode::FAILURE
    }
}
