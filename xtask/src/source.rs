//! Source model for the lint engine: lexed files with `#[cfg(test)]`
//! masking, and the workspace walker that decides what gets linted.

use crate::lexer::{lex, Tok, Token};
use std::io;
use std::path::{Path, PathBuf};

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` — token `i` belongs to a `#[cfg(test)]`- or
    /// `#[test]`-gated item (lints about production determinism skip
    /// these regions).
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Lex `src` under the given workspace-relative path.
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let test_mask = test_mask(&tokens);
        SourceFile {
            rel: rel.to_string(),
            tokens,
            test_mask,
        }
    }

    /// Significant tokens (no comments) outside test regions, with their
    /// indices into `self.tokens`.
    pub fn code(&self) -> Vec<(usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| !self.test_mask[*i] && !matches!(t.tok, Tok::Comment(_)))
            .collect()
    }
}

/// Compute the test mask: any item (through its full brace/semicolon
/// extent) whose attributes mention `test` — `#[cfg(test)]`,
/// `#[cfg(any(test, …))]`, `#[test]` — is masked, attributes included.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        // Inner attribute `#![…]` applies to the enclosing module/crate,
        // never gates the next item; skip over it.
        let inner = matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('!')));
        if inner {
            j += 1;
        }
        if !matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
            i += 1;
            continue;
        }
        let (attr_end, mut gated) = scan_attr(tokens, j);
        if inner {
            gated = false;
        }
        if !gated {
            i = attr_end;
            continue;
        }
        // Consume any further attributes, then the gated item itself.
        let mut k = attr_end;
        while matches!(tokens.get(k).map(|t| &t.tok), Some(Tok::Punct('#')))
            && matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let (next_end, _) = scan_attr(tokens, k + 1);
            k = next_end;
        }
        let item_end = scan_item(tokens, k);
        for m in mask.iter_mut().take(item_end).skip(attr_start) {
            *m = true;
        }
        i = item_end;
    }
    mask
}

/// Scan a bracketed attribute starting at the `[` at index `open`.
/// Returns `(index past the closing ], attribute mentions `test`)`.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, has_test);
                }
            }
            Tok::Ident(s) if s == "test" || s == "miri" => has_test = true,
            _ => {}
        }
        i += 1;
    }
    (i, has_test)
}

/// Scan one item starting at `start`: ends at the first `;` at brace depth
/// zero, or at the `}` closing the first opened brace. Returns the index
/// one past the end.
fn scan_item(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct(';') if depth == 0 => return i + 1,
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// The workspace under analysis: every `.rs` file below `crates/*/src/`
/// plus the root crate's `src/`. `compat/` (vendored offline stand-ins
/// for crates.io) and `xtask/` itself are intentionally out of scope, as
/// are test/bench/example targets — per-lint path scoping narrows
/// further.
#[derive(Debug)]
pub struct Workspace {
    /// Root directory the `rel` paths are relative to.
    pub root: PathBuf,
    /// Loaded files, sorted by `rel` (deterministic lint output).
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Load the lintable files under `root`. File contents are read
    /// sequentially (the walk is I/O bound and must stay ordered for
    /// deterministic error reporting), then lexed in parallel across the
    /// available cores; the final sort by `rel` keeps lint output
    /// deterministic regardless of which thread parsed what.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut sources: Vec<(String, String)> = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in sorted_dir(&crates_dir)? {
                let src = entry.join("src");
                if src.is_dir() {
                    read_tree(root, &src, &mut sources)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            read_tree(root, &root_src, &mut sources)?;
        }
        let mut files = parse_parallel(sources);
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The loaded file at exactly this relative path, if any.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn read_tree(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            read_tree(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("path under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = std::fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

/// Lex the gathered sources across the available cores. Ordering is not
/// preserved here — the caller sorts by `rel`.
fn parse_parallel(sources: Vec<(String, String)>) -> Vec<SourceFile> {
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(sources.len().max(1));
    if workers <= 1 {
        return sources
            .into_iter()
            .map(|(rel, src)| SourceFile::parse(&rel, &src))
            .collect();
    }
    let queue = std::sync::Mutex::new(sources);
    let mut files = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut parsed = Vec::new();
                    loop {
                        // PANICS: a poisoned queue means a worker panicked
                        // mid-lex; re-raising on join is the right outcome.
                        let next = queue.lock().expect("source queue").pop();
                        match next {
                            Some((rel, src)) => parsed.push(SourceFile::parse(&rel, &src)),
                            None => return parsed,
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            // PANICS: propagate a lexer panic instead of reporting a
            // silently truncated workspace.
            files.extend(h.join().expect("lint worker panicked"));
        }
    });
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "pub fn real() { HashMap::new(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { HashSet::new(); }\n}\n",
        );
        let visible: Vec<&str> = f
            .code()
            .iter()
            .filter_map(|(_, t)| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(visible.contains(&"HashMap"));
        assert!(!visible.contains(&"HashSet"));
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#[test]\nfn t() { Instant::now(); }\nfn real() { keep(); }\n",
        );
        let visible: Vec<&str> = f
            .code()
            .iter()
            .filter_map(|(_, t)| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(!visible.contains(&"Instant"));
        assert!(visible.contains(&"keep"));
    }

    #[test]
    fn inner_deny_attr_does_not_mask_file() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\nfn real() { body(); }\n",
        );
        let visible = f.code().len();
        assert!(visible > 3, "inner attribute must not gate the file");
    }

    #[test]
    fn cfg_test_use_statement_is_masked() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n",
        );
        let visible: Vec<&str> = f
            .code()
            .iter()
            .filter_map(|(_, t)| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(!visible.contains(&"HashMap"));
        assert!(visible.contains(&"real"));
    }
}
