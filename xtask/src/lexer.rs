//! A minimal Rust lexer: just enough token structure for architectural
//! lints — identifiers, punctuation, string/char/number literals, comments
//! (kept, with text, for the SAFETY-comment lint), lifetimes — each tagged
//! with its 1-based source line.
//!
//! The build environment is offline, so this replaces `syn`. It is *not* a
//! full lexer (no floating-point literal gymnastics, no `macro_rules!`
//! fragment awareness); it only promises that comments, strings and raw
//! strings never leak tokens, which is what keeps the lints sound.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including raw `r#ident`, without the `r#`).
    Ident(String),
    /// Single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// String literal content, quotes and prefixes stripped (`"x"`,
    /// `r#"x"#`, `b"x"` all yield `Str("x")`).
    Str(String),
    /// Character, byte, or numeric literal (content irrelevant to lints).
    Lit,
    /// Comment, full text including delimiters (`//…` or `/*…*/`).
    Comment(String),
    /// Lifetime (`'a`), name irrelevant to lints.
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// Lex `src` into a token stream. Unterminated constructs lex to the end
/// of input rather than erroring: lints prefer degraded output over
/// refusing to scan a file.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    b: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.b.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.b.get(self.i).copied();
        if c == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c.is_alphabetic() || c == '_' => self.ident_or_prefixed(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::Comment(text), line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        loop {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                text.push('/');
                text.push('*');
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                text.push('*');
                text.push('/');
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else if let Some(c) = self.bump() {
                text.push(c);
            } else {
                break; // unterminated
            }
        }
        self.push(Tok::Comment(text), line);
    }

    /// A `"…"` string starting at the current `"`.
    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    content.push(c);
                    if let Some(e) = self.bump() {
                        content.push(e);
                    }
                }
                _ => content.push(c),
            }
        }
        self.push(Tok::Str(content), line);
    }

    /// A raw string starting at the current `#`-or-`"` (prefix `r`/`br`
    /// already consumed by the caller).
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut content = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Need `hashes` consecutive '#' to close.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        content.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            content.push(c);
        }
        self.push(Tok::Str(content), line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then to closing '.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Lit, line);
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                // `'a'` is a char literal, `'a` (no closing quote after the
                // identifier) is a lifetime.
                let mut k = 0usize;
                while matches!(self.peek(k), Some(c) if c.is_alphanumeric() || c == '_') {
                    k += 1;
                }
                if self.peek(k) == Some('\'') {
                    for _ in 0..=k {
                        self.bump();
                    }
                    self.push(Tok::Lit, line);
                } else {
                    for _ in 0..k {
                        self.bump();
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            Some(_) => {
                // `'('` and friends: char literal.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::Lit, line);
            }
            None => self.push(Tok::Lit, line),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        // Digits plus alphanumeric suffix chars; dots are left to punct
        // (`1.5` lexes as Lit '.' Lit — harmless for these lints).
        while matches!(self.peek(0), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        self.push(Tok::Lit, line);
    }

    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            name.push(self.peek(0).unwrap());
            self.bump();
        }
        match (name.as_str(), self.peek(0)) {
            // Raw / byte string prefixes.
            ("r" | "br" | "b", Some('"')) => self.prefixed_string(&name),
            ("r" | "br", Some('#')) => {
                // `r#"…"#` raw string vs `r#ident` raw identifier.
                if matches!(self.peek(1), Some(c) if c == '"' || c == '#') {
                    self.raw_string();
                } else {
                    self.bump(); // the #
                    let mut raw = String::new();
                    while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                        raw.push(self.peek(0).unwrap());
                        self.bump();
                    }
                    self.push(Tok::Ident(raw), line);
                }
            }
            // Byte char literal `b'x'`.
            ("b", Some('\'')) => {
                self.char_or_lifetime();
                // Rewrite the just-pushed token's line (it is a Lit).
                if let Some(last) = self.out.last_mut() {
                    last.line = line;
                }
            }
            _ => self.push(Tok::Ident(name), line),
        }
    }

    fn prefixed_string(&mut self, prefix: &str) {
        if prefix.starts_with('r') || prefix == "br" {
            self.raw_string();
        } else {
            self.string();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let src = r###"
            // HashMap in a comment
            /* nested /* HashMap */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let real = BTreeMap::new();
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn string_contents_are_kept() {
        let toks = lex(r#"ctx.u64("trials")"#);
        assert!(toks.iter().any(|t| t.tok == Tok::Str("trials".to_string())));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn escaped_quotes_stay_in_string() {
        let ids = idents(r#"let x = "a \" HashMap"; keep"#);
        assert_eq!(ids, vec!["let", "x", "keep"]);
    }
}
