//! Workspace root crate: re-exports the full `mlec-rs` suite for the
//! runnable examples under `examples/` and the cross-crate integration tests
//! under `tests/`. Library users should depend on `mlec-core` (the facade)
//! or on the individual layer crates directly.

pub use mlec_analysis as analysis;
pub use mlec_core as core;
pub use mlec_ec as ec;
pub use mlec_gf as gf;
pub use mlec_sim as sim;
pub use mlec_topology as topology;
