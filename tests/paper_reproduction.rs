//! Cross-crate integration tests: the paper's headline numbers and finding
//! orderings, exercised through the public `mlec-core` facade exactly as the
//! figure binaries do.

use mlec_core::experiments::{
    fig10_durability, fig7_catastrophic_prob, fig8_fig9_repair_methods, repair_traffic_comparison,
    table2_and_fig6,
};
use mlec_core::sim::RepairMethod;
use mlec_core::topology::MlecScheme;
use mlec_core::MlecSystem;

#[test]
fn table2_full_reproduction() {
    // Every cell of Table 2, against the paper's printed values.
    let rows = table2_and_fig6();
    let expect = [
        ("C/C", 20.0, 40.0, 400.0, 250.0),
        ("C/D", 20.0, 264.0, 2400.0, 250.0),
        ("D/C", 20.0, 40.0, 400.0, 1363.0),
        ("D/D", 20.0, 264.0, 2400.0, 1363.0),
    ];
    for (scheme, disk_tb, disk_bw, pool_tb, pool_bw) in expect {
        let row = rows.iter().find(|r| r.scheme == scheme).unwrap();
        assert!(
            (row.disk_size_tb - disk_tb).abs() < 0.5,
            "{scheme} disk size"
        );
        assert!(
            (row.disk_bw_mbs - disk_bw).abs() < 1.0,
            "{scheme} disk bw: {}",
            row.disk_bw_mbs
        );
        assert!(
            (row.pool_size_tb - pool_tb).abs() < 0.5,
            "{scheme} pool size"
        );
        assert!(
            (row.pool_bw_mbs - pool_bw).abs() < 1.0,
            "{scheme} pool bw: {}",
            row.pool_bw_mbs
        );
    }
}

#[test]
fn fig6_repair_time_orderings() {
    let rows = table2_and_fig6();
    let get = |s: &str| rows.iter().find(|r| r.scheme == s).unwrap();
    // (a): C/D and D/D ~6x faster than C/C and D/C on single-disk repair.
    let ratio = get("C/C").disk_repair_hours / get("C/D").disk_repair_hours;
    assert!(ratio > 5.0 && ratio < 7.5, "ratio={ratio}");
    // (b): C/D slowest, D/C fastest, D/D slightly slower than C/C.
    assert!(get("C/D").pool_repair_hours > get("D/D").pool_repair_hours);
    assert!(get("D/D").pool_repair_hours > get("C/C").pool_repair_hours);
    assert!(get("C/C").pool_repair_hours > get("D/C").pool_repair_hours);
    // D/C is ~5x faster than C/C (paper F#3: "5x repair rate").
    let speedup = get("C/C").pool_repair_hours / get("D/C").pool_repair_hours;
    assert!(speedup > 4.0 && speedup < 6.5, "speedup={speedup}");
}

#[test]
fn fig8_traffic_exact_cells() {
    let cells = fig8_fig9_repair_methods();
    let get = |s: &str, m: &str| {
        cells
            .iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .cross_rack_tb
    };
    assert!((get("C/C", "R_ALL") - 4400.0).abs() < 1.0);
    assert!((get("C/D", "R_ALL") - 26400.0).abs() < 1.0);
    assert!((get("C/C", "R_FCO") - 880.0).abs() < 1.0);
    assert!((get("C/D", "R_HYB") - 3.1).abs() < 0.1);
    assert!((get("D/D", "R_HYB") - 3.1).abs() < 0.1);
    // R_MIN cuts another 4x (p_l+1 -> 1 chunk per lost stripe).
    assert!((get("C/C", "R_MIN") - 220.0).abs() < 0.5);
}

#[test]
fn fig7_catastrophic_probability_split() {
    let rows = fig7_catastrophic_prob();
    let get = |s: &str| rows.iter().find(|r| r.scheme == s).unwrap().prob_per_year;
    // Paper: */C below 0.001%/yr, */D near 0.00001%/yr.
    assert!(get("C/C") < 1e-4);
    assert!(get("C/D") < get("C/C") / 20.0);
    assert_eq!(get("C/C"), get("D/C"), "local structure identical");
    assert_eq!(get("C/D"), get("D/D"), "local structure identical");
}

#[test]
fn fig10_all_findings() {
    let cells = fig10_durability();
    let get = |s: &str, m: &str| {
        cells
            .iter()
            .find(|c| c.scheme == s && c.method == m)
            .unwrap()
            .nines
    };
    for s in ["C/C", "C/D", "D/C", "D/D"] {
        // F#1-3: each optimization helps (or at least never hurts).
        assert!(get(s, "R_FCO") >= get(s, "R_ALL"), "{s} FCO");
        assert!(get(s, "R_HYB") >= get(s, "R_FCO") - 1e-9, "{s} HYB");
        assert!(get(s, "R_MIN") >= get(s, "R_HYB") - 1e-9, "{s} MIN");
    }
    // F#1 magnitude: 0.9-6.6 nines from R_FCO.
    let fco_gains: Vec<f64> = ["C/C", "C/D", "D/C", "D/D"]
        .iter()
        .map(|s| get(s, "R_FCO") - get(s, "R_ALL"))
        .collect();
    assert!(
        fco_gains.iter().cloned().fold(f64::NAN, f64::max) > 4.0,
        "{fco_gains:?}"
    );
    assert!(
        fco_gains.iter().cloned().fold(f64::NAN, f64::min) > 0.3,
        "{fco_gains:?}"
    );
    // F#4: with R_MIN, C/D and D/D best, D/C worst.
    assert!(get("D/C", "R_MIN") <= get("C/C", "R_MIN"));
    assert!(get("C/D", "R_MIN") >= get("C/C", "R_MIN"));
    assert!(get("D/D", "R_MIN") >= get("C/C", "R_MIN"));
}

#[test]
fn traffic_comparison_orders_of_magnitude() {
    let rows = repair_traffic_comparison();
    let slec = rows
        .iter()
        .find(|r| r.system.starts_with("Net-SLEC (7+3)"))
        .unwrap();
    // Paper §5.1.4: "hundreds of TB ... every day".
    assert!(slec.tb_per_day > 100.0 && slec.tb_per_day < 999.0);
    // MLEC with any method: a few TB per thousands of years.
    for r in rows.iter().filter(|r| r.system.starts_with("MLEC")) {
        assert!(
            r.tb_per_year < 1.0,
            "{}: {} TB/yr should be tiny",
            r.system,
            r.tb_per_year
        );
    }
}

#[test]
fn facade_end_to_end_consistency() {
    // The facade and the experiment runners must agree.
    let system = MlecSystem::paper_default(MlecScheme::CD);
    let plan = system.plan_catastrophic_repair(RepairMethod::Hyb);
    let cells = fig8_fig9_repair_methods();
    let cell = cells
        .iter()
        .find(|c| c.scheme == "C/D" && c.method == "R_HYB")
        .unwrap();
    assert!((plan.cross_rack_traffic_tb - cell.cross_rack_tb).abs() < 1e-9);
}

#[test]
fn burst_pdl_findings_hold_via_facade() {
    // F#3: C/C has PDL 0 whenever at most p_n racks are hit.
    let cc = MlecSystem::paper_default(MlecScheme::CC);
    assert_eq!(cc.burst_pdl(50, 2, 50, 1), 0.0);
    // F#4: the x = p_n + 1 = 3 column at y = 60 is the danger zone.
    let dd = MlecSystem::paper_default(MlecScheme::DD);
    let danger = dd.burst_pdl(60, 3, 100, 2);
    let safe = dd.burst_pdl(60, 40, 100, 2);
    assert!(danger > safe, "danger={danger} safe={safe}");
}
