//! Methodology cross-validation (paper §6.2: "Our multiple methodologies
//! verify each other"): the event-driven pool simulator, the Markov chain,
//! and the DP/Monte-Carlo burst estimators must agree where their domains
//! overlap.

use mlec_core::analysis::burst::{mlec_burst_pdl, mlec_burst_pdl_direct_mc};
use mlec_core::analysis::chains::pool_catastrophic_rate;
use mlec_core::sim::config::MlecDeployment;
use mlec_core::sim::failure::FailureModel;
use mlec_core::sim::pool_sim::simulate_pool;
use mlec_core::topology::MlecScheme;

/// Simulated catastrophic rate at inflated AFR must match the Markov chain
/// within Monte Carlo noise for the clustered pool (whose chain is exact up
/// to the per-disk-rebuild independence assumption).
#[test]
fn clustered_pool_sim_matches_markov_chain() {
    let mut dep = MlecDeployment::paper_default(MlecScheme::CC);
    dep.config.afr = 5.0;
    let model = FailureModel::Exponential { afr: 5.0 };
    let mut events = 0usize;
    let mut pool_years = 0.0;
    for seed in 0..24u64 {
        let r = simulate_pool(&dep, &model, 500.0, seed);
        events += r.events.len();
        pool_years += r.pool_years;
    }
    let sim_rate = events as f64 / pool_years;
    let chain_rate = pool_catastrophic_rate(&dep).to_per_year();
    assert!(events >= 30, "need statistics, got {events} events");
    let ratio = sim_rate / chain_rate;
    assert!(
        (0.4..2.5).contains(&ratio),
        "sim={sim_rate:.3e} chain={chain_rate:.3e} ratio={ratio:.2}"
    );
}

/// The declustered pool's simulated rate must agree with its
/// priority-drain chain within an order of magnitude (the chain abstracts
/// the census into a max-multiplicity state), and both must sit far below
/// the clustered pool per disk-failure.
#[test]
fn declustered_pool_sim_matches_chain_magnitude() {
    let mut dep = MlecDeployment::paper_default(MlecScheme::CD);
    dep.config.afr = 8.0;
    let model = FailureModel::Exponential { afr: 8.0 };
    let mut events = 0usize;
    let mut pool_years = 0.0;
    for seed in 0..16u64 {
        let r = simulate_pool(&dep, &model, 250.0, seed);
        events += r.events.len();
        pool_years += r.pool_years;
    }
    let sim_rate = events as f64 / pool_years.max(1e-9);
    let chain_rate = pool_catastrophic_rate(&dep).to_per_year();
    // Order-of-magnitude agreement (the state abstraction costs accuracy).
    if events > 0 {
        let ratio = sim_rate / chain_rate;
        assert!(
            (0.05..20.0).contains(&ratio),
            "sim={sim_rate:.3e} chain={chain_rate:.3e} ratio={ratio:.2}"
        );
    } else {
        // No events seen: the chain must predict them to be rare at this
        // simulated volume.
        assert!(chain_rate * pool_years < 50.0, "chain={chain_rate:.3e}");
    }
}

/// The conditional-MC burst estimator and the disk-level direct MC must
/// agree on every scheme's hot cells.
#[test]
fn burst_dp_matches_direct_monte_carlo() {
    for scheme in MlecScheme::ALL {
        let dep = MlecDeployment::paper_default(scheme);
        for (y, x) in [(60u32, 3u32), (40, 4)] {
            let exact = mlec_burst_pdl(&dep, y, x, 300, 10);
            let direct = mlec_burst_pdl_direct_mc(&dep, y, x, 600, 11);
            // Agreement within MC noise, only meaningful for resolvable PDL.
            if exact > 0.03 || direct > 0.03 {
                assert!(
                    (exact - direct).abs() < 0.1 + 0.35 * exact.max(direct),
                    "{scheme} y={y} x={x}: exact={exact:.4} direct={direct:.4}"
                );
            }
        }
    }
}

/// Under an exhaustive small-world check, the conditional estimator's zero
/// cells must be genuinely impossible layouts (the DP never reports false
/// zeros).
#[test]
fn burst_zero_cells_are_structural() {
    let dep = MlecDeployment::paper_default(MlecScheme::CC);
    // x <= p_n: data loss impossible regardless of y (F#3).
    for x in 1..=2u32 {
        let exact = mlec_burst_pdl(&dep, 60, x, 50, 12);
        let direct = mlec_burst_pdl_direct_mc(&dep, 60, x, 200, 13);
        assert_eq!(exact, 0.0, "x={x}");
        assert_eq!(direct, 0.0, "x={x}");
    }
}
