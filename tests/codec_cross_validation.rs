//! Cross-crate codec validation: the byte-level erasure codecs, the
//! placement layer, and the analytic loss predicates must tell the same
//! story.

use mlec_core::ec::{Lrc, MlecCodec, ReedSolomon};
use rand::prelude::*;
use rand_chacha::ChaCha12Rng;

fn random_chunks(rng: &mut ChaCha12Rng, n: usize, len: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen()).collect())
        .collect()
}

#[test]
fn paper_default_mlec_codec_survives_its_design_tolerance() {
    // (10+2)/(17+3): any 2 whole local stripes + up to 3 chunks in each
    // other stripe must be recoverable.
    let mut rng = ChaCha12Rng::seed_from_u64(1);
    let codec = MlecCodec::new(10, 2, 17, 3).unwrap();
    let data = random_chunks(&mut rng, 170, 64);
    let stripe = codec.encode(&data).unwrap();
    assert_eq!(stripe.len(), 12);
    assert_eq!(stripe[0].len(), 20);

    let mut grid: Vec<Vec<Option<Vec<u8>>>> = stripe
        .iter()
        .map(|row| row.iter().cloned().map(Some).collect())
        .collect();
    // Kill rows 0 and 5 entirely (2 lost local stripes = p_n tolerated).
    for row in [0, 5] {
        grid[row].iter_mut().for_each(|c| *c = None);
    }
    // And 3 random chunks in every other row (p_l tolerated locally).
    for (j, row) in grid.iter_mut().enumerate() {
        if j == 0 || j == 5 {
            continue;
        }
        let mut cols: Vec<usize> = (0..20).collect();
        cols.shuffle(&mut rng);
        for &c in cols.iter().take(3) {
            row[c] = None;
        }
    }
    let (local, network) = codec.reconstruct(&mut grid).unwrap();
    assert_eq!(local, 10 * 3, "3 chunks per healthy row repaired locally");
    assert_eq!(network, 40, "two full rows over the network");
    for (j, row) in stripe.iter().enumerate() {
        for (i, chunk) in row.iter().enumerate() {
            assert_eq!(grid[j][i].as_ref().unwrap(), chunk, "row {j} col {i}");
        }
    }
}

#[test]
fn mlec_loses_data_exactly_when_pn_plus_1_stripes_lost() {
    let mut rng = ChaCha12Rng::seed_from_u64(2);
    let codec = MlecCodec::new(3, 2, 4, 1).unwrap();
    let data = random_chunks(&mut rng, 12, 16);
    let stripe = codec.encode(&data).unwrap();
    // p_n = 2: losing 3 rows is fatal, 2 is fine.
    for lost_rows in [2usize, 3] {
        let mut grid: Vec<Vec<Option<Vec<u8>>>> = stripe
            .iter()
            .map(|row| row.iter().cloned().map(Some).collect())
            .collect();
        for row in grid.iter_mut().take(lost_rows) {
            for chunk in row.iter_mut() {
                *chunk = None;
            }
        }
        let result = codec.reconstruct(&mut grid);
        if lost_rows <= 2 {
            assert!(result.is_ok(), "{lost_rows} lost rows must recover");
        } else {
            assert!(result.is_err(), "{lost_rows} lost rows must fail");
        }
    }
}

#[test]
fn rs_decode_equals_lrc_decode_when_structures_agree() {
    // An LRC with l=1 local group and r globals contains the same data
    // recovery capability as RS(k, 1+r) for patterns within tolerance.
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let k = 6;
    let data = random_chunks(&mut rng, k, 32);
    let lrc = Lrc::new(k, 1, 2).unwrap();
    let chunks = lrc.encode(&data).unwrap();
    let mut slots: Vec<Option<Vec<u8>>> = chunks.iter().cloned().map(Some).collect();
    slots[0] = None;
    slots[3] = None;
    slots[6] = None; // the single local parity
    lrc.reconstruct(&mut slots).unwrap();
    for i in 0..k {
        assert_eq!(slots[i].as_deref().unwrap(), &data[i][..]);
    }

    let rs = ReedSolomon::new(k, 3).unwrap();
    let shards = rs.encode(&data).unwrap();
    let mut rs_slots: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    rs_slots[0] = None;
    rs_slots[3] = None;
    rs_slots[6] = None;
    rs.reconstruct(&mut rs_slots).unwrap();
    for i in 0..k {
        assert_eq!(rs_slots[i].as_deref().unwrap(), &data[i][..]);
    }
}

#[test]
fn lrc_rank_decodability_implies_counting_bound() {
    // The exact rank test can never claim decodability where the
    // information-theoretic counting bound says impossible; and for this MR
    // construction the two must coincide (exhaustive on a small code).
    let lrc = Lrc::new(6, 2, 2).unwrap();
    let n = lrc.total_chunks();
    let mut agreements = 0;
    for mask in 0u32..(1 << n) {
        let erased: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let rank_ok = lrc.decodable(&erased);
        let count_ok = lrc.decodable_heuristic(&erased);
        if rank_ok {
            assert!(
                count_ok,
                "rank-decodable pattern {mask:b} violates the counting bound"
            );
        }
        if rank_ok == count_ok {
            agreements += 1;
        }
    }
    // The Cauchy-based construction is *near*-maximally-recoverable: the
    // bound is tight on all but a handful of patterns (generic coefficients
    // occasionally produce a singular mixed minor). All weight <= r+1
    // patterns are covered by the ec crate's guaranteed-tolerance tests.
    let total = 1u32 << n;
    assert!(
        agreements as f64 >= total as f64 * 0.995,
        "agreement {agreements}/{total} below near-MR threshold"
    );
}

#[test]
fn codec_chunk_knowledge_matches_analysis_census() {
    // The byte-level MLEC reconstruct's local/network split must match the
    // analytic injected-failure census for the clustered scheme: with
    // p_l + 1 failed chunks per stripe, everything needs network repair.
    let mut rng = ChaCha12Rng::seed_from_u64(4);
    let codec = MlecCodec::new(2, 1, 4, 1).unwrap();
    let data = random_chunks(&mut rng, 8, 8);
    let stripe = codec.encode(&data).unwrap();
    let mut grid: Vec<Vec<Option<Vec<u8>>>> = stripe
        .iter()
        .map(|row| row.iter().cloned().map(Some).collect())
        .collect();
    // p_l + 1 = 2 chunk failures in row 1: a lost local stripe.
    grid[1][0] = None;
    grid[1][2] = None;
    let (local, network) = codec.reconstruct(&mut grid).unwrap();
    assert_eq!(local, 0);
    assert_eq!(network, 2);
}
