//! End-to-end guarantees of the `mlec-runner` executor when driving the
//! real simulators: thread-count invariance, kill/resume equivalence, and
//! convergence of the runner-driven splitting estimator to the Markov
//! model.

use mlec_analysis::chains::pool_catastrophic_rate;
use mlec_analysis::splitting::stage1_via_runner;
use mlec_runner::{run, RunSpec, StopRule};
use mlec_sim::config::MlecDeployment;
use mlec_sim::failure::FailureModel;
use mlec_sim::importance::FailureBias;
use mlec_sim::system_sim::SystemSimOptions;
use mlec_sim::trials::{PoolTrial, SystemTrial};
use mlec_sim::RepairMethod;
use mlec_topology::MlecScheme;

fn inflated(scheme: MlecScheme, afr: f64) -> MlecDeployment {
    let mut dep = MlecDeployment::paper_default(scheme);
    dep.config.afr = afr;
    dep
}

/// The same system-simulation campaign aggregates bit-identically whether
/// run on one worker thread or several.
#[test]
fn system_campaign_is_thread_count_invariant() {
    let dep = inflated(MlecScheme::CD, 2.0);
    let model = FailureModel::Exponential { afr: 2.0 };
    let trial = SystemTrial {
        dep: &dep,
        model: &model,
        strategy: RepairMethod::Fco.strategy(),
        years: 0.25,
        opts: SystemSimOptions::default(),
        event_log: None,
        log_label: "",
    };
    let spec = |threads| {
        RunSpec::new("e2e/threads", 17, StopRule::fixed(12))
            .batch_size(2)
            .threads(threads)
    };
    let single = run(&trial, &spec(1)).unwrap();
    for threads in [2, 4] {
        let multi = run(&trial, &spec(threads)).unwrap();
        assert_eq!(multi.trials, single.trials);
        assert_eq!(multi.acc, single.acc, "threads={threads}");
    }
}

/// Killing a pool campaign halfway and resuming it from the JSONL manifest
/// reproduces the uninterrupted run exactly — even when the resumed half
/// runs on a different thread count.
#[test]
fn pool_campaign_resumes_from_manifest_bit_identically() {
    let dir = std::env::temp_dir().join("mlec-e2e-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pool-resume.jsonl");
    let _ = std::fs::remove_file(&path);

    let dep = inflated(MlecScheme::CC, 4.0);
    let model = FailureModel::Exponential { afr: 4.0 };
    let trial = PoolTrial {
        dep: &dep,
        model: &model,
        years_per_trial: 25.0,
        bias: FailureBias::NONE,
        event_log: None,
        log_label: "",
    };
    let spec = |trials: u64| {
        RunSpec::new("e2e/resume", 23, StopRule::fixed(trials))
            .batch_size(4)
            .batches_per_round(1)
            .config_hash(0xC0FFEE)
    };

    // Uninterrupted reference run.
    let full = run(&trial, &spec(32)).unwrap();

    // "Killed" run: stops at half, checkpointing every round.
    let half = run(&trial, &spec(16).threads(1).manifest(&path)).unwrap();
    assert_eq!(half.trials, 16);
    assert_eq!(half.resumed_trials, 0);

    // Resume with the full budget on a different thread count.
    let resumed = run(&trial, &spec(32).threads(3).manifest(&path)).unwrap();
    assert_eq!(resumed.resumed_trials, 16);
    assert_eq!(resumed.trials, 32);
    assert_eq!(resumed.acc, full.acc, "resume must be bit-identical");
}

/// An importance-sampled pool campaign at the paper's true 1% AFR resumes
/// from its JSONL manifest bit-identically: the weighted accumulator
/// (likelihood-weighted rate sums, weighted lost-stripe Welford, excursion
/// diagnostics) round-trips exactly, across a thread-count change.
#[test]
fn weighted_pool_campaign_resumes_from_manifest_bit_identically() {
    let dir = std::env::temp_dir().join("mlec-e2e-resume-weighted");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pool-resume-weighted.jsonl");
    let _ = std::fs::remove_file(&path);

    let dep = MlecDeployment::paper_default(MlecScheme::CC);
    let model = FailureModel::Exponential { afr: 0.01 };
    let bias = FailureBias::auto(&dep, &model);
    let trial = PoolTrial {
        dep: &dep,
        model: &model,
        years_per_trial: 25.0,
        bias,
        event_log: None,
        log_label: "",
    };
    let spec = |trials: u64| {
        RunSpec::new("e2e/resume-weighted", 29, StopRule::fixed(trials))
            .batch_size(4)
            .batches_per_round(1)
            .config_hash(0xB1A5)
    };

    // Uninterrupted reference run.
    let full = run(&trial, &spec(32)).unwrap();
    assert!(full.acc.events() > 0, "auto bias must observe events");
    assert!(full.acc.rate.ess() > 0.0);

    // "Killed" run: stops at half, checkpointing every round.
    let half = run(&trial, &spec(16).threads(1).manifest(&path)).unwrap();
    assert_eq!(half.trials, 16);

    // Resume with the full budget on a different thread count.
    let resumed = run(&trial, &spec(32).threads(3).manifest(&path)).unwrap();
    assert_eq!(resumed.resumed_trials, 16);
    assert_eq!(resumed.trials, 32);
    assert_eq!(
        resumed.acc, full.acc,
        "weighted resume must be bit-identical"
    );
    assert_eq!(
        resumed.acc.rate_per_pool_year().to_bits(),
        full.acc.rate_per_pool_year().to_bits()
    );
}

/// The runner-driven splitting stage 1 converges on the pool Markov chain:
/// with an adaptive stop at 30% relative precision, the simulated
/// catastrophic rate's 95% interval — widened by the documented sim-vs-chain
/// model tolerance (0.4x..2.5x, see `tests/sim_vs_model.rs`) — brackets the
/// analytic rate.
#[test]
fn stage1_through_runner_converges_to_markov_chain() {
    let afr = 5.0;
    let dep = inflated(MlecScheme::CC, afr);
    let model = FailureModel::Exponential { afr };
    let spec = RunSpec::new("e2e/convergence", 31, StopRule::until_rel_err(0.30, 24, 96))
        .batch_size(8)
        .batches_per_round(1);
    let (s1, report) = stage1_via_runner(&dep, &model, 500.0, FailureBias::NONE, &spec).unwrap();

    assert!(
        report.acc.events() > 10,
        "need observable events, got {}",
        report.acc.events()
    );
    assert_eq!(s1.cat_rate_per_pool_year, report.acc.rate_per_pool_year());

    let analytic = pool_catastrophic_rate(&dep).to_per_year();
    let (lo, hi) = (report.summary.ci_low, report.summary.ci_high);
    assert!(lo > 0.0 && hi > lo);
    assert!(
        lo / 2.5 <= analytic && analytic <= hi / 0.4,
        "analytic {analytic} outside tolerance-widened CI [{lo}, {hi}]"
    );
}
