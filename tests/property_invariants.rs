//! Workspace-level property tests: invariants that must hold across
//! arbitrary configurations of the whole stack.
//!
//! Cases are driven by `mlec-runner`'s deterministic seed stream (one
//! substream per property, one seed per case), so every run exercises the
//! same inputs.

use mlec_core::analysis::burst::poisson_binomial_tail;
use mlec_core::ec::{Lrc, MlecCodec, ReedSolomon};
use mlec_core::sim::census::{hypergeom_pmf, prob_cover_all, StripeCensus};
use mlec_core::topology::{burst, FailureLayout, Geometry, LocalPoolMap, Placement};
use mlec_runner::{SeedStream, SplitMix64};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

const CASES: u64 = 64;

fn case_rng(property: &str, case: u64) -> SplitMix64 {
    SplitMix64::new(SeedStream::new(0x1417A217, property).trial_seed(case))
}

fn in_range(r: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
    lo + r.next_u64() % (hi - lo)
}

/// RS round-trips any erasure pattern of size <= p, for random (k, p).
#[test]
fn rs_reconstructs_any_tolerable_pattern() {
    for case in 0..CASES {
        let mut r = case_rng("rs-round-trip", case);
        let k = in_range(&mut r, 2, 20) as usize;
        let p = in_range(&mut r, 1, 6) as usize;
        let seed = r.next_u64();
        let len = in_range(&mut r, 1, 64) as usize;
        let rs = ReedSolomon::new(k, p).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..len).map(|_| rand::Rng::gen(&mut rng)).collect())
            .collect();
        let encoded = rs.encode(&data).unwrap();
        // Random erasure pattern of size p.
        let mut idx: Vec<usize> = (0..k + p).collect();
        rand::seq::SliceRandom::shuffle(&mut idx[..], &mut rng);
        let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        for &i in idx.iter().take(p) {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for i in 0..(k + p) {
            assert_eq!(shards[i].as_ref().unwrap(), &encoded[i]);
        }
    }
}

/// Parity verification catches any single-byte corruption.
#[test]
fn rs_verify_catches_corruption() {
    for case in 0..CASES {
        let mut r = case_rng("rs-verify", case);
        let k = in_range(&mut r, 2, 10) as usize;
        let p = in_range(&mut r, 1, 4) as usize;
        let rs = ReedSolomon::new(k, p).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|s| vec![s as u8; 16]).collect();
        let mut shards = rs.encode(&data).unwrap();
        assert!(rs.verify(&shards).unwrap());
        let si = (r.next_u64() as usize) % (k + p);
        let bi = (r.next_u64() as usize) % 16;
        let bit = (r.next_u64() % 8) as u8;
        shards[si][bi] ^= 1 << bit;
        assert!(!rs.verify(&shards).unwrap());
    }
}

/// The MLEC grid is consistent: reconstruct after erasing anything within
/// tolerance returns the exact original.
#[test]
fn mlec_reconstruct_exactness() {
    for case in 0..CASES {
        let mut r = case_rng("mlec-exact", case);
        let kn = in_range(&mut r, 2, 5) as usize;
        let pn = in_range(&mut r, 1, 3) as usize;
        let kl = in_range(&mut r, 2, 6) as usize;
        let pl = in_range(&mut r, 1, 3) as usize;
        let seed = r.next_u64();
        let codec = MlecCodec::new(kn, pn, kl, pl).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..kn * kl)
            .map(|_| (0..8).map(|_| rand::Rng::gen(&mut rng)).collect())
            .collect();
        let stripe = codec.encode(&data).unwrap();
        let mut grid: Vec<Vec<Option<Vec<u8>>>> = stripe
            .iter()
            .map(|row| row.iter().cloned().map(Some).collect())
            .collect();
        // Erase pl chunks per row (always locally recoverable).
        for row in &mut grid {
            let len = row.len();
            for i in 0..pl {
                row[i * 2 % len] = None;
            }
        }
        codec.reconstruct(&mut grid).unwrap();
        for (j, row) in stripe.iter().enumerate() {
            for (i, chunk) in row.iter().enumerate() {
                assert_eq!(grid[j][i].as_ref().unwrap(), chunk);
            }
        }
    }
}

/// LRC: any single failure repairs with only its group (cost < k).
#[test]
fn lrc_local_repair_is_cheaper() {
    let mut tested = 0;
    for case in 0..(CASES * 2) {
        let mut r = case_rng("lrc-local-repair", case);
        let k = in_range(&mut r, 4, 30) as usize;
        let l = in_range(&mut r, 2, 4) as usize;
        let rr = in_range(&mut r, 1, 4) as usize;
        if !k.is_multiple_of(l) {
            continue;
        }
        let lrc = Lrc::new(k, l, rr).unwrap();
        for idx in 0..(k + l) {
            assert!(lrc.single_repair_cost(idx) <= k / l + 1);
            assert!(lrc.single_repair_cost(idx) < k);
        }
        tested += 1;
    }
    assert!(
        tested >= CASES as usize / 2,
        "only {tested} admissible cases"
    );
}

/// Census invariants under arbitrary failure/drain interleavings: stripes
/// conserved, counts non-negative, failed chunks consistent.
#[test]
fn census_invariants() {
    for case in 0..CASES {
        let mut r = case_rng("census", case);
        let num_ops = in_range(&mut r, 1, 30);
        let stripes = 1000.0 + r.next_f64() * (1e7 - 1000.0);
        let mut census = StripeCensus::new(60, 10, stripes);
        for _ in 0..num_ops {
            match r.next_u64() % 4 {
                0..=1 => {
                    if census.failed_disks() < 59 {
                        census.add_disk_failure();
                    }
                }
                2 => {
                    census.drain_priority(stripes * 0.01);
                }
                _ => {
                    census.drain_priority(census.failed_chunks() + 1.0);
                }
            }
            assert!((census.total_stripes() - stripes).abs() < stripes * 1e-9);
            for m in 0..=10u32 {
                assert!(census.at(m) >= -1e-9, "negative class {m}");
            }
        }
    }
}

/// Hypergeometric distributions sum to 1 and cover-all matches the top
/// bucket for any geometry.
#[test]
fn hypergeometric_consistency() {
    for case in 0..CASES {
        let mut r = case_rng("hypergeom-total", case);
        let d = in_range(&mut r, 10, 200) as u32;
        let w = in_range(&mut r, 2, 20) as u32;
        let f = in_range(&mut r, 0, 10) as u32;
        if !(w <= d && f <= d) {
            continue;
        }
        let total: f64 = (0..=f.min(w)).map(|m| hypergeom_pmf(d, w, f, m)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
        if f <= w {
            assert!((hypergeom_pmf(d, w, f, f) - prob_cover_all(d, w, f)).abs() < 1e-12);
        }
    }
}

/// Poisson-binomial tails are monotone in k and bounded by [0, 1].
#[test]
fn poisson_binomial_tail_properties() {
    for case in 0..CASES {
        let mut r = case_rng("pb-tail", case);
        let n = in_range(&mut r, 1, 20) as usize;
        let probs: Vec<f64> = (0..n).map(|_| r.next_f64()).collect();
        let mut last = 1.0f64;
        for k in 0..=probs.len() {
            let t = poisson_binomial_tail(&probs, k);
            assert!((0.0..=1.0 + 1e-12).contains(&t));
            assert!(t <= last + 1e-12, "tail must decrease in k");
            last = t;
        }
    }
}

/// Burst layouts always hit exactly the requested shape.
#[test]
fn burst_layout_shape() {
    let g = Geometry::small_test();
    let mut tested = 0;
    for case in 0..(CASES * 2) {
        let mut r = case_rng("burst-shape", case);
        let seed = r.next_u64();
        let y = in_range(&mut r, 1, 40) as u32;
        let x = in_range(&mut r, 1, 6) as u32;
        if y < x || y > g.disks_per_rack() * x {
            continue;
        }
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let layout = burst::sample_burst(&g, y, x, &mut rng).unwrap();
        assert_eq!(layout.len() as u32, y);
        assert_eq!(layout.affected_racks(&g) as u32, x);
        tested += 1;
    }
    assert!(
        tested >= CASES as usize / 2,
        "only {tested} admissible cases"
    );
}

/// Pool maps partition the disks: every disk in exactly one pool, pool
/// sizes as declared.
#[test]
fn pool_map_partitions() {
    let g = Geometry::small_test(); // 12 disks/enclosure
    for width in 2..13u32 {
        if !g.disks_per_enclosure.is_multiple_of(width) && width != g.disks_per_enclosure {
            continue;
        }
        for placement in [Placement::Clustered, Placement::Declustered] {
            if placement == Placement::Clustered && !g.disks_per_enclosure.is_multiple_of(width) {
                continue;
            }
            let map = LocalPoolMap::new(g, placement, width);
            let mut seen = vec![false; g.total_disks() as usize];
            for pool in 0..map.num_pools() {
                for d in map.disks_of_pool(pool) {
                    assert!(!seen[d as usize], "disk {d} in two pools");
                    seen[d as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "all disks covered");
        }
    }
}

/// Failure layout aggregation is conservative: per-rack counts sum to the
/// layout size.
#[test]
fn layout_counting_conservation() {
    for case in 0..CASES {
        let mut r = case_rng("layout-conservation", case);
        let n = in_range(&mut r, 0, 50);
        let disks: Vec<u32> = (0..n).map(|_| (r.next_u64() % 144) as u32).collect();
        let g = Geometry::small_test();
        let layout = FailureLayout::new(disks);
        let total: u32 = layout.per_rack_counts(&g).values().sum();
        assert_eq!(total as usize, layout.len());
    }
}
