//! Workspace-level property-based tests: invariants that must hold across
//! arbitrary configurations of the whole stack.

use mlec_core::analysis::burst::poisson_binomial_tail;
use mlec_core::ec::{Lrc, MlecCodec, ReedSolomon};
use mlec_core::sim::census::{hypergeom_pmf, prob_cover_all, StripeCensus};
use mlec_core::topology::{burst, FailureLayout, Geometry, LocalPoolMap, Placement};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RS round-trips any erasure pattern of size <= p, for random (k, p).
    #[test]
    fn rs_reconstructs_any_tolerable_pattern(
        k in 2usize..20,
        p in 1usize..6,
        seed: u64,
        len in 1usize..64,
    ) {
        let rs = ReedSolomon::new(k, p).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..len).map(|_| rand::Rng::gen(&mut rng)).collect())
            .collect();
        let encoded = rs.encode(&data).unwrap();
        // Random erasure pattern of size p.
        let mut idx: Vec<usize> = (0..k + p).collect();
        rand::seq::SliceRandom::shuffle(&mut idx[..], &mut rng);
        let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        for &i in idx.iter().take(p) {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for i in 0..(k + p) {
            prop_assert_eq!(shards[i].as_ref().unwrap(), &encoded[i]);
        }
    }

    /// Parity verification catches any single-byte corruption.
    #[test]
    fn rs_verify_catches_corruption(
        k in 2usize..10,
        p in 1usize..4,
        shard_sel: u8,
        byte_sel: u8,
        bit in 0u8..8,
    ) {
        let rs = ReedSolomon::new(k, p).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|s| vec![s as u8; 16]).collect();
        let mut shards = rs.encode(&data).unwrap();
        prop_assert!(rs.verify(&shards).unwrap());
        let si = shard_sel as usize % (k + p);
        let bi = byte_sel as usize % 16;
        shards[si][bi] ^= 1 << bit;
        prop_assert!(!rs.verify(&shards).unwrap());
    }

    /// The MLEC grid is consistent: reconstruct after erasing anything
    /// within tolerance returns the exact original.
    #[test]
    fn mlec_reconstruct_exactness(
        kn in 2usize..5,
        pn in 1usize..3,
        kl in 2usize..6,
        pl in 1usize..3,
        seed: u64,
    ) {
        let codec = MlecCodec::new(kn, pn, kl, pl).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..kn * kl)
            .map(|_| (0..8).map(|_| rand::Rng::gen(&mut rng)).collect())
            .collect();
        let stripe = codec.encode(&data).unwrap();
        let mut grid: Vec<Vec<Option<Vec<u8>>>> = stripe
            .iter()
            .map(|r| r.iter().cloned().map(Some).collect())
            .collect();
        // Erase pl chunks per row (always locally recoverable).
        for row in grid.iter_mut() {
            let len = row.len();
            for i in 0..pl {
                row[i * 2 % len] = None;
            }
        }
        codec.reconstruct(&mut grid).unwrap();
        for (j, row) in stripe.iter().enumerate() {
            for (i, chunk) in row.iter().enumerate() {
                prop_assert_eq!(grid[j][i].as_ref().unwrap(), chunk);
            }
        }
    }

    /// LRC: any single failure repairs with only its group (cost < k).
    #[test]
    fn lrc_local_repair_is_cheaper(k in 4usize..30, l in 2usize..4, r in 1usize..4) {
        prop_assume!(k % l == 0);
        let lrc = Lrc::new(k, l, r).unwrap();
        for idx in 0..(k + l) {
            prop_assert!(lrc.single_repair_cost(idx) <= k / l + 1);
            prop_assert!(lrc.single_repair_cost(idx) < k);
        }
    }

    /// Census invariants under arbitrary failure/drain interleavings:
    /// stripes conserved, counts non-negative, failed chunks consistent.
    #[test]
    fn census_invariants(
        ops in proptest::collection::vec(0u8..4, 1..30),
        stripes in 1000.0f64..1e7,
    ) {
        let mut census = StripeCensus::new(60, 10, stripes);
        for op in ops {
            match op {
                0..=1 => {
                    if census.failed_disks() < 59 {
                        census.add_disk_failure();
                    }
                }
                2 => {
                    census.drain_priority(stripes * 0.01);
                }
                _ => {
                    census.drain_priority(census.failed_chunks() + 1.0);
                }
            }
            prop_assert!((census.total_stripes() - stripes).abs() < stripes * 1e-9);
            for m in 0..=10u32 {
                prop_assert!(census.at(m) >= -1e-9, "negative class {m}");
            }
        }
    }

    /// Hypergeometric distributions sum to 1 and cover-all matches the top
    /// bucket for any geometry.
    #[test]
    fn hypergeometric_consistency(d in 10u32..200, w in 2u32..20, f in 0u32..10) {
        prop_assume!(w <= d && f <= d);
        let total: f64 = (0..=f.min(w)).map(|m| hypergeom_pmf(d, w, f, m)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total={total}");
        if f <= w {
            prop_assert!((hypergeom_pmf(d, w, f, f) - prob_cover_all(d, w, f)).abs() < 1e-12);
        }
    }

    /// Poisson-binomial tails are monotone in k and bounded by [0, 1].
    #[test]
    fn poisson_binomial_tail_properties(
        probs in proptest::collection::vec(0.0f64..1.0, 1..20),
    ) {
        let mut last = 1.0f64;
        for k in 0..=probs.len() {
            let t = poisson_binomial_tail(&probs, k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
            prop_assert!(t <= last + 1e-12, "tail must decrease in k");
            last = t;
        }
    }

    /// Burst layouts always hit exactly the requested shape.
    #[test]
    fn burst_layout_shape(seed: u64, y in 1u32..40, x in 1u32..6) {
        prop_assume!(y >= x);
        let g = Geometry::small_test();
        prop_assume!(y <= g.disks_per_rack() * x);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let layout = burst::sample_burst(&g, y, x, &mut rng).unwrap();
        prop_assert_eq!(layout.len() as u32, y);
        prop_assert_eq!(layout.affected_racks(&g) as u32, x);
    }

    /// Pool maps partition the disks: every disk in exactly one pool, pool
    /// sizes as declared.
    #[test]
    fn pool_map_partitions(width in 2u32..13) {
        let g = Geometry::small_test(); // 12 disks/enclosure
        prop_assume!(g.disks_per_enclosure % width == 0 || width == g.disks_per_enclosure);
        for placement in [Placement::Clustered, Placement::Declustered] {
            if placement == Placement::Clustered && g.disks_per_enclosure % width != 0 {
                continue;
            }
            let map = LocalPoolMap::new(g, placement, width);
            let mut seen = vec![false; g.total_disks() as usize];
            for pool in 0..map.num_pools() {
                for d in map.disks_of_pool(pool) {
                    prop_assert!(!seen[d as usize], "disk {d} in two pools");
                    seen[d as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "all disks covered");
        }
    }

    /// Failure layout aggregation is conservative: per-rack counts sum to
    /// the layout size.
    #[test]
    fn layout_counting_conservation(disks in proptest::collection::vec(0u32..144, 0..50)) {
        let g = Geometry::small_test();
        let layout = FailureLayout::new(disks);
        let total: u32 = layout.per_rack_counts(&g).values().sum();
        prop_assert_eq!(total as usize, layout.len());
    }
}
