//! Scenario: a storage architect chooses a repair method for black-box
//! RBODs vs transparent enclosures — the paper's §2.4/§4.2 repair-method
//! tradeoff, quantified per scheme.
//!
//! Run with: `cargo run --release --example repair_planning`

use mlec_core::sim::RepairMethod;
use mlec_core::topology::MlecScheme;
use mlec_core::MlecSystem;

fn main() {
    println!("Repair planning: traffic, time, durability, and implementation cost\n");

    for scheme in [MlecScheme::CC, MlecScheme::CD] {
        let system = MlecSystem::paper_default(scheme);
        println!("=== scheme {scheme} ===");
        println!(
            "{:8} {:>14} {:>11} {:>10} {:>12} {:>24}",
            "method", "cross-rack TB", "network h", "local h", "nines", "needs cross-level API?"
        );
        for method in RepairMethod::EXTENDED {
            let plan = system.plan_catastrophic_repair(method);
            let nines = system.durability_nines(method);
            println!(
                "{:8} {:>14.1} {:>11.1} {:>10.1} {:>12.1} {:>24}",
                method.name(),
                plan.cross_rack_traffic_tb,
                plan.network_time_h,
                plan.local_time_h,
                nines,
                if method.has_chunk_knowledge() {
                    "yes"
                } else {
                    "no (black-box RBOD ok)"
                },
            );
        }
        println!();
    }

    println!("Guidance (paper §6.1):");
    println!("  - No devops team / off-the-shelf RBODs: R_ALL works but costs traffic + nines.");
    println!("  - With cross-level failure reporting, R_FCO is the big first win.");
    println!("  - R_MIN minimizes network contention with user I/O; total repair takes longer,");
    println!("    but the pool exits the catastrophic state fastest, maximizing durability.");
}
