//! Quickstart: configure the paper's reference MLEC system, look at its
//! repair characteristics, and compare the four placement schemes.
//!
//! Run with: `cargo run --release --example quickstart`

use mlec_core::sim::RepairMethod;
use mlec_core::topology::MlecScheme;
use mlec_core::MlecSystem;

fn main() {
    println!("mlec-rs quickstart — the paper's 57,600-disk (10+2)/(17+3) system\n");

    for scheme in MlecScheme::ALL {
        let system = MlecSystem::paper_default(scheme);
        println!("scheme {scheme}:");
        println!(
            "  single-disk repair:  {:>7.0} MB/s available, {:>6.1} h per disk",
            system.single_disk_repair_bw_mbs(),
            system.single_disk_repair_hours()
        );
        println!(
            "  catastrophic pool:   {:>7.0} MB/s available over the network",
            system.catastrophic_pool_repair_bw_mbs()
        );
        println!(
            "  catastrophic prob:   {:.2e} per system-year",
            system.catastrophic_probability_per_year()
        );
        let durability = system.durability_nines(RepairMethod::Min);
        println!("  durability (R_MIN):  {durability:.1} nines\n");
    }

    // The headline repair-method tradeoff on C/D: traffic vs time.
    let system = MlecSystem::paper_default(MlecScheme::CD);
    println!("repair methods on C/D (catastrophic pool, p_l+1 = 4 failed disks):");
    println!(
        "  {:8} {:>14} {:>12} {:>12}",
        "method", "cross-rack TB", "network h", "local h"
    );
    for method in RepairMethod::PAPER {
        let plan = system.plan_catastrophic_repair(method);
        println!(
            "  {:8} {:>14.1} {:>12.1} {:>12.1}",
            method.name(),
            plan.cross_rack_traffic_tb,
            plan.network_time_h,
            plan.local_time_h
        );
    }
    println!("\nR_HYB cuts cross-rack traffic from 880 TB to ~3 TB — the paper's Fig 8 result.");
}
