//! Scenario: a datacenter operator expects correlated failure bursts (e.g.
//! rack-level power events) and wants to know which MLEC scheme tolerates
//! them best — the paper's §4.1.1 / Fig 5 analysis, interactively.
//!
//! Run with: `cargo run --release --example burst_tolerance`

use mlec_core::topology::MlecScheme;
use mlec_core::MlecSystem;

fn main() {
    println!("Burst tolerance: PDL when y disks fail simultaneously across x racks\n");

    let bursts = [
        (12u32, 12u32, "12 failures scattered over 12 racks"),
        (12, 3, "12 failures concentrated in 3 racks"),
        (60, 3, "60 failures in 3 racks (worst case: p_n+1 racks)"),
        (60, 30, "60 failures scattered over 30 racks"),
        (60, 1, "60 failures in a single rack (power event)"),
    ];

    println!(
        "{:<50} {:>10} {:>10} {:>10} {:>10}",
        "burst", "C/C", "C/D", "D/C", "D/D"
    );
    for (y, x, label) in bursts {
        print!("{label:<50}");
        for scheme in MlecScheme::ALL {
            let system = MlecSystem::paper_default(scheme);
            let pdl = system.burst_pdl(y, x, 200, 0xb0b5);
            print!(" {pdl:>9.2e}");
        }
        println!();
    }

    println!("\nReading the table (paper findings):");
    println!("  - Scattering the same failures over more racks lowers PDL (F#2).");
    println!("  - C/C is the most burst-tolerant; D/D the least (F#5-7).");
    println!(
        "  - Everything survives a single-rack event: network parity covers a full rack (F#3)."
    );
    println!(
        "\nTakeaway #3 from the paper: systems seeing frequent correlated bursts should use C/C."
    );
}
