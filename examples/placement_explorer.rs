//! Scenario: an operator explores where objects physically live under each
//! MLEC scheme (the paper's §6.1 future-work problem — logical-to-physical
//! mapping), asks the advisor for a configuration, and replays a synthetic
//! failure trace against it.
//!
//! Run with: `cargo run --release --example placement_explorer`

use mlec_core::advisor::{recommend, BurstExposure, OpsModel, Priority, SiteProfile};
use mlec_core::sim::config::MlecDeployment;
use mlec_core::sim::system_sim::simulate_system_trace;
use mlec_core::sim::trace::{synthesize, TraceSpec};
use mlec_core::topology::objectmap::{MapperCode, ObjectMapper};
use mlec_core::topology::{Geometry, MlecScheme};

fn main() {
    println!("Placement explorer: objects -> chunks, advisor, trace replay\n");

    // 1. Where does logical byte 1 TiB live under each scheme?
    let offset = 1u64 << 40;
    println!("chunk holding logical offset 1 TiB, per scheme:");
    for scheme in MlecScheme::ALL {
        let mapper = ObjectMapper::new(
            Geometry::paper_default(),
            MapperCode::paper_default(),
            scheme,
            128_000,
            42,
        );
        let loc = mapper.locate(offset);
        println!(
            "  {scheme}: network stripe {:>7}, local stripe {:>2}, chunk {:>2} -> disk {:>6} (rack {})",
            loc.network_stripe,
            loc.row,
            loc.col,
            loc.disk,
            mapper.rack_of(&loc)
        );
    }

    // 2. Enumerate a full stripe's footprint for a repair coordinator.
    let mapper = ObjectMapper::new(
        Geometry::paper_default(),
        MapperCode::paper_default(),
        MlecScheme::DD,
        128_000,
        42,
    );
    let chunks = mapper.stripe_chunks(12345);
    let racks: std::collections::BTreeSet<u32> = chunks.iter().map(|c| mapper.rack_of(c)).collect();
    println!(
        "\nD/D network stripe 12345 spans {} chunks in {} racks: {:?}",
        chunks.len(),
        racks.len(),
        racks
    );

    // 3. Ask the advisor.
    let profile = SiteProfile {
        bursts: BurstExposure::Rare,
        ops: OpsModel::Transparent,
        priority: Priority::Durability,
        min_nines: 20.0,
    };
    match recommend(&profile) {
        Some(rec) => {
            println!(
                "\nadvisor: use {} with {} ({:.1} nines, {:.1} TB per catastrophic repair)",
                rec.scheme, rec.method, rec.durability_nines, rec.repair_traffic_tb
            );
            for line in &rec.rationale {
                println!("  - {line}");
            }

            // 4. Replay a synthetic 3-year trace against the recommendation.
            let geometry = Geometry::paper_default();
            let trace = synthesize(
                &geometry,
                &TraceSpec {
                    background_afr: 0.01,
                    bursts_per_year: 0.3,
                    burst_size: 12,
                    burst_racks: 2,
                    years: 3.0,
                },
                7,
            );
            let dep = MlecDeployment::paper_default(rec.scheme);
            let result = simulate_system_trace(&dep, &trace, rec.method, 7);
            println!(
                "\ntrace replay: {} failures over {:.1} years -> {} catastrophic pools, {} data-loss events",
                result.disk_failures, result.years, result.catastrophic_pools, result.data_loss_events
            );
        }
        None => println!("\nadvisor: no configuration meets the target — widen the code search"),
    }
}
