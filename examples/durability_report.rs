//! Scenario: produce a durability report for a proposed deployment —
//! pool-level simulation cross-checked against the Markov model (the
//! paper's §6.2 "multiple methodologies verify each other"), then the
//! full-system splitting estimate.
//!
//! Run with: `cargo run --release --example durability_report`

use mlec_core::analysis::chains::{pool_catastrophic_rate, pool_chain};
use mlec_core::analysis::markov::nines;
use mlec_core::analysis::splitting::{stage1_from_simulation, stage2_pdl};
use mlec_core::sim::config::MlecDeployment;
use mlec_core::sim::failure::FailureModel;
use mlec_core::sim::pool_sim::simulate_pool;
use mlec_core::sim::RepairMethod;
use mlec_core::topology::MlecScheme;
use mlec_core::units::Duration;

fn main() {
    println!("Durability report for the paper's (10+2)/(17+3) deployment\n");

    // 1. Cross-validate the analytic pool chain against event simulation at
    //    an inflated AFR (rare events are unreachable by direct MC at 1%).
    println!("step 1: simulator vs Markov model at inflated AFR (cross-validation)");
    for scheme in [MlecScheme::CC, MlecScheme::CD] {
        let mut dep = MlecDeployment::paper_default(scheme);
        dep.config.afr = 8.0; // inflate so events are observable
        let model = FailureModel::Exponential { afr: 8.0 };
        let mut sim_rate = 0.0;
        let years_per_run = 200.0;
        let runs = 20;
        for seed in 0..runs {
            let r = simulate_pool(&dep, &model, years_per_run, seed);
            sim_rate += r.events.len() as f64;
        }
        sim_rate /= years_per_run * runs as f64;
        let chain_rate = pool_catastrophic_rate(&dep).to_per_year();
        println!(
            "  {scheme}: simulated {sim_rate:.3e} vs chain {chain_rate:.3e} catastrophic/pool-yr \
             (ratio {:.2})",
            sim_rate / chain_rate
        );
    }

    // 2. Production-AFR stage 1 via the chain, stage 2 analytically.
    println!("\nstep 2: full-system one-year durability (splitting estimator)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "R_ALL", "R_FCO", "R_HYB", "R_MIN"
    );
    for scheme in MlecScheme::ALL {
        let dep = MlecDeployment::paper_default(scheme);
        print!("{:>8}", scheme.name());
        for method in RepairMethod::PAPER {
            let s1 = mlec_core::analysis::splitting::stage1_analytic(&dep);
            let pdl = stage2_pdl(&dep, method, &s1, Duration::from_years(1.0));
            print!(" {:>10.1}", nines(pdl));
        }
        println!();
    }

    // 3. Show how simulation samples plug into stage 1 when available.
    println!("\nstep 3: plugging simulation samples into stage 1 (C/C at AFR 50%)");
    let mut dep = MlecDeployment::paper_default(MlecScheme::CC);
    dep.config.afr = 0.5;
    let model = FailureModel::Exponential { afr: 0.5 };
    let mut merged = simulate_pool(&dep, &model, 2000.0, 1);
    for seed in 2..6 {
        merged.merge(simulate_pool(&dep, &model, 2000.0, seed));
    }
    let s1 = stage1_from_simulation(&dep, &merged);
    println!(
        "  {} catastrophic events over {} pool-years -> rate {:.2e}/pool-yr",
        merged.events.len(),
        merged.pool_years,
        s1.cat_rate_per_pool_year
    );
    let pdl = stage2_pdl(&dep, RepairMethod::Fco, &s1, Duration::from_years(1.0));
    println!(
        "  system durability at this AFR under R_FCO: {:.1} nines",
        nines(pdl)
    );

    // 4. Chain internals, for the curious.
    let dep = MlecDeployment::paper_default(MlecScheme::CD);
    let chain = pool_chain(&dep);
    println!(
        "\n(declustered pool chain has {} transient states; mean time to catastrophic = {:.2e} years)",
        chain.transient_states(),
        chain.mean_time_to_absorb().to_years()
    );
}
