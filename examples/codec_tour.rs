//! A tour of the byte-level erasure codecs: Reed–Solomon, the two-level
//! MLEC codec (paper Fig 2c data path), and the (4,2,2) LRC of Fig 14 —
//! including actual data loss and recovery.
//!
//! Run with: `cargo run --release --example codec_tour`

use mlec_core::ec::{Lrc, MlecCodec, ReedSolomon};

fn main() {
    println!("Codec tour: encode, lose chunks, repair, verify\n");

    // --- Reed-Solomon (17+3): the paper's local code.
    let rs = ReedSolomon::new(17, 3).unwrap();
    let data: Vec<Vec<u8>> = (0..17)
        .map(|i| format!("local chunk {i:02} of a (17+3) stripe!").into_bytes())
        .collect();
    let encoded = rs.encode(&data).unwrap();
    println!(
        "RS(17+3): encoded 17 data chunks into {} shards",
        encoded.len()
    );
    let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
    shards[2] = None;
    shards[9] = None;
    shards[18] = None; // one parity too
    rs.reconstruct(&mut shards).unwrap();
    assert_eq!(shards[2].as_deref(), Some(&data[2][..]));
    println!("  lost shards 2, 9, 18 -> reconstructed, data verified\n");

    // --- MLEC (2+1)/(2+1): the Fig 2c example, with a lost local stripe.
    let codec = MlecCodec::new(2, 1, 2, 1).unwrap();
    let data: Vec<Vec<u8>> = vec![
        b"a1".to_vec(),
        b"a2".to_vec(),
        b"a3".to_vec(),
        b"a4".to_vec(),
    ];
    let stripe = codec.encode(&data).unwrap();
    println!(
        "MLEC (2+1)/(2+1): {} local stripes x {} chunks each",
        stripe.len(),
        stripe[0].len()
    );
    let mut grid: Vec<Vec<Option<Vec<u8>>>> = stripe
        .iter()
        .map(|row| row.iter().cloned().map(Some).collect())
        .collect();
    // Lose the entire first enclosure (rack R1): a lost local stripe.
    for chunk in &mut grid[0] {
        *chunk = None;
    }
    // Plus a single chunk in row 1: locally recoverable.
    grid[1][1] = None;
    let (local, network) = codec.reconstruct(&mut grid).unwrap();
    println!("  lost row 0 entirely + one chunk of row 1");
    println!("  -> {local} chunk repaired locally, {network} chunks over the network");
    assert_eq!(grid[0][0].as_deref(), Some(&b"a1"[..]));
    println!("  data verified\n");

    // --- LRC (4,2,2): Fig 14.
    let lrc = Lrc::new(4, 2, 2).unwrap();
    let data: Vec<Vec<u8>> = (1..=4).map(|i| format!("a{i}").into_bytes()).collect();
    let chunks = lrc.encode(&data).unwrap();
    println!(
        "LRC(4,2,2): {} chunks (4 data + 2 local + 2 global parities)",
        chunks.len()
    );
    println!(
        "  single-failure repair cost: {} chunks (group) vs 4 for a plain (4+2) RS",
        lrc.single_repair_cost(0)
    );
    let mut slots: Vec<Option<Vec<u8>>> = chunks.iter().cloned().map(Some).collect();
    slots[0] = None; // a1
    slots[2] = None; // a3
    slots[6] = None; // global parity
    lrc.reconstruct(&mut slots).unwrap();
    assert_eq!(slots[0].as_deref(), Some(&b"a1"[..]));
    println!("  lost a1, a3, and a global parity -> reconstructed, data verified");

    // Decodability probing.
    let mut erased = vec![false; 8];
    erased[0] = true;
    erased[1] = true;
    erased[4] = true; // both of group 0's data + its local parity
    erased[6] = true;
    println!(
        "  pattern (a1, a2, local parity 0, global 0) decodable? {}",
        lrc.decodable(&erased)
    );
}
